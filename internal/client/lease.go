package client

import (
	"sort"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/sim"
)

// leaseActions adapts the Client to core.LeaseActions: this is where the
// four phases of §3.2 become file-system behaviour.
type leaseActions struct{ c *Client }

// SendKeepAlive sends the NULL renewal message. Its ACK renews the lease
// through the ordinary channel path.
func (a leaseActions) SendKeepAlive() {
	a.c.call(&msg.KeepAlive{}, nil)
}

// Quiesce (phase 3): stop servicing new file-system requests; in-progress
// operations keep draining until phase 4.
func (a leaseActions) Quiesce() {
	a.c.quiesced = true
}

// Flush (phase 4): write every dirty page to the SAN. The control network
// may be gone but the SAN is not — the server's fence only rises at
// τ(1+ε), after our lease (and this flush window) has ended.
func (a leaseActions) Flush(done func()) {
	a.c.flushAll(done)
}

// Expired: the contract is over. Caches (data and metadata) are invalid,
// all locks are ceded locally, in-flight control calls die, and the
// client begins rejoin.
func (a leaseActions) Expired() {
	c := a.c
	for ino := range c.lockedInos {
		c.oracle.LockInactive(c.id, ino)
	}
	c.lockedInos = make(map[msg.ObjectID]msg.LockMode)
	if lost := c.cache.InvalidateAll(); lost > 0 {
		c.lostDirty.Add(uint64(lost))
	}
	c.handles = make(map[msg.Handle]handleInfo)
	c.registered = false
	c.quiesced = false
	c.reassertTried = false
	c.chn.CancelAll()
	c.cancelSAN()
	c.lease.Reset()
	c.rejoin()
}

func (a leaseActions) PhaseChange(from, to core.Phase) {
	if a.c.OnPhase != nil {
		a.c.OnPhase(from, to)
	}
}

// maybeReassert attempts client-driven lock reassertion (§6): the NACK
// that just arrived may come from a restarted server that lost its lock
// table rather than from a lease timeout. While our lease is still
// running (phase 3/4 after the NACK), our locks remain contractually
// protected, so we present them; a server in its grace period restores
// them and the lease revives, a server that is actually timing us out
// refuses and the ordinary recovery completes.
func (c *Client) maybeReassert() {
	if c.crashedFlg || !c.registered || c.reassertTried || c.cfg.DisableReassert {
		return
	}
	if c.lease.Phase() != core.Phase3Suspect && c.lease.Phase() != core.Phase4Flush {
		return
	}
	c.reassertTried = true
	claims := make([]msg.LockClaim, 0, len(c.lockedInos))
	for ino, mode := range c.lockedInos {
		claims = append(claims, msg.LockClaim{Ino: ino, Mode: mode})
	}
	sort.Slice(claims, func(i, j int) bool { return claims[i].Ino < claims[j].Ino })
	sent := c.clock.Now()
	c.chn.Call(&msg.Reassert{Locks: claims}, func(r *msg.Reply) {
		if r == nil || r.Status != msg.ACK || r.Err != msg.OK {
			return // recovery proceeds through the phases
		}
		res := r.Body.(msg.ReassertRes)
		if !c.lease.Revive(sent) {
			return // too late: the lease lapsed while reasserting
		}
		c.chn.SetEpoch(res.Epoch)
		c.quiesced = false
		c.reassertTried = false
		if c.OnRecovered != nil {
			c.OnRecovered(res.Epoch)
		}
	})
}

// rejoin (re)registers with the server, retrying until it succeeds. On
// success the client starts from nothing: fresh epoch, empty cache, no
// locks — and, for the paper's policy, a fresh lease granted by the
// Rejoin ACK itself.
func (c *Client) rejoin() {
	if c.crashedFlg || c.recovering {
		return
	}
	c.recovering = true
	c.recovers.Inc()
	c.chn.SetEpoch(0)
	c.call(&msg.Rejoin{}, func(r *msg.Reply) {
		c.recovering = false
		if r == nil || r.Status != msg.ACK || r.Err != msg.OK {
			// Shouldn't normally happen (Rejoin is always admitted), but
			// a reply lost to a crash restart warrants another attempt.
			c.clock.AfterFunc(c.cfg.Core.RetryInterval, func() { c.rejoin() })
			return
		}
		res := r.Body.(msg.RejoinRes)
		c.chn.SetEpoch(res.Epoch)
		c.registered = true
		c.quiesced = false
		c.startBaselineTimers()
		c.startFlushTimer()
		if c.OnRecovered != nil {
			c.OnRecovered(res.Epoch)
		}
	})
}

// recoverLeaseless is the recovery path for policies without the paper's
// lease: the client has just learned (via NACK or a fenced I/O) that the
// server stopped honoring its locks. By now it may have served stale
// reads and stranded dirty data — exactly what the experiments count.
func (c *Client) recoverLeaseless() {
	if c.crashedFlg || c.recovering {
		return
	}
	for ino := range c.lockedInos {
		c.oracle.LockInactive(c.id, ino)
	}
	c.lockedInos = make(map[msg.ObjectID]msg.LockMode)
	if lost := c.cache.InvalidateAll(); lost > 0 {
		c.lostDirty.Add(uint64(lost))
	}
	c.handles = make(map[msg.Handle]handleInfo)
	c.registered = false
	c.objExpiry = make(map[msg.ObjectID]sim.Time)
	c.attrFetched = make(map[msg.ObjectID]sim.Time)
	c.chn.CancelAll()
	c.cancelSAN()
	c.stopBaselineTimers()
	c.rejoin()
}

// startFlushTimer arms periodic write-back when configured.
func (c *Client) startFlushTimer() {
	if c.cfg.FlushInterval <= 0 || c.flushTimer != nil {
		return
	}
	var fire func()
	fire = func() {
		c.flushTimer = nil
		if c.crashedFlg {
			return
		}
		if c.registered && !c.quiesced {
			c.flushAll(nil)
		}
		c.flushTimer = c.clock.AfterFunc(c.cfg.FlushInterval, fire)
	}
	c.flushTimer = c.clock.AfterFunc(c.cfg.FlushInterval, fire)
}
