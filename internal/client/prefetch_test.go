package client_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/cluster"
	"repro/internal/msg"
)

// populateBlocks writes n distinct blocks to path from client w and
// flushes them to the SAN.
func populateBlocks(t *testing.T, cl *cluster.Cluster, w int, path string, n int) {
	t.Helper()
	h, _ := cl.MustOpen(w, path, true, true)
	data := make([]byte, cluster.BlockSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(data, uint64(i))
		if e := cl.Write(w, h, uint64(i), data); e != msg.OK {
			t.Fatalf("populate write %d: %v", i, e)
		}
	}
	if e := cl.Sync(w); e != msg.OK {
		t.Fatalf("populate sync: %v", e)
	}
}

// scanSANReads runs a full sequential scan of path's n blocks on client
// r and returns the SAN messages the scan sent.
func scanSANReads(t *testing.T, cl *cluster.Cluster, r int, path string, n int) uint64 {
	t.Helper()
	h, _ := cl.MustOpen(r, path, false, false)
	before := cl.Reg.CounterValue("net.san.sent.san-io")
	data := make([]byte, 8)
	for i := 0; i < n; i++ {
		got, e := cl.Read(r, h, uint64(i))
		if e != msg.OK {
			t.Fatalf("read %d: %v", i, e)
		}
		binary.BigEndian.PutUint64(data, uint64(i))
		if string(got[:8]) != string(data) {
			t.Fatalf("block %d content wrong", i)
		}
	}
	return cl.Reg.CounterValue("net.san.sent.san-io") - before
}

// A sequential scan with read-ahead takes fewer SAN round trips than
// the same scan without it (blocks arrive in vectored batches), and the
// prefetched pages are actually the ones serving the reads.
func TestSequentialScanPrefetchReducesSANRoundTrips(t *testing.T) {
	const blocks = 24

	run := func(prefetch int) (msgs uint64, hits uint64, batches uint64) {
		opts := cluster.DefaultOptions()
		opts.Prefetch = prefetch
		cl := cluster.New(opts)
		cl.Start()
		populateBlocks(t, cl, 0, "/seq", blocks)
		msgs = scanSANReads(t, cl, 1, "/seq", blocks)
		hits = cl.Reg.CounterValue("client.n11.cache.prefetch_hits")
		batches = cl.Reg.CounterValue("client.n11.prefetch_batches")
		return
	}

	offMsgs, offHits, offBatches := run(-1)
	onMsgs, onHits, onBatches := run(0) // 0 = default window (3)

	if offHits != 0 || offBatches != 0 {
		t.Fatalf("disabled prefetch still prefetched: hits=%d batches=%d", offHits, offBatches)
	}
	if offMsgs != blocks {
		t.Fatalf("baseline scan sent %d SAN messages, want %d scalar reads", offMsgs, blocks)
	}
	if onBatches == 0 || onHits == 0 {
		t.Fatalf("prefetch never engaged: batches=%d hits=%d", onBatches, onHits)
	}
	if onMsgs >= offMsgs {
		t.Fatalf("prefetch did not reduce SAN round trips: %d with, %d without", onMsgs, offMsgs)
	}
}

// A re-scan over a warm cache issues no read-ahead at all: every block
// is already resident, so the candidate windows are empty.
func TestWarmRescanIssuesNoPrefetch(t *testing.T) {
	const blocks = 12
	opts := cluster.DefaultOptions()
	cl := cluster.New(opts)
	cl.Start()
	populateBlocks(t, cl, 0, "/warm", blocks)
	scanSANReads(t, cl, 1, "/warm", blocks)
	batches := cl.Reg.CounterValue("client.n11.prefetch_batches")
	if got := scanSANReads(t, cl, 1, "/warm", blocks); got != 0 {
		t.Fatalf("warm re-scan sent %d SAN messages", got)
	}
	if cl.Reg.CounterValue("client.n11.prefetch_batches") != batches {
		t.Fatal("warm re-scan issued read-ahead for resident blocks")
	}
}

// The byte quota bounds resident cache bytes end to end through the
// options plumbing, and eviction under the quota still refetches
// correctly.
func TestCacheQuotaBoundsResidentBytes(t *testing.T) {
	const blocks = 8
	quota := int64(4 * cluster.BlockSize)
	opts := cluster.DefaultOptions()
	opts.CacheQuota = quota
	opts.Prefetch = -1 // isolate the quota behaviour
	cl := cluster.New(opts)
	cl.Start()
	populateBlocks(t, cl, 0, "/quota", blocks)
	c := cl.Clients[0]
	if got := c.Cache().ResidentBytes(); got > quota {
		t.Fatalf("resident bytes %d over quota %d after flush", got, quota)
	}
	// Random-ish re-reads: everything stays servable, quota stays bounded.
	h, _ := cl.MustOpen(0, "/quota", false, false)
	for i := 0; i < blocks; i++ {
		idx := uint64((i * 5) % blocks)
		if _, e := cl.Read(0, h, idx); e != msg.OK {
			t.Fatalf("read %d: %v", idx, e)
		}
		if got := c.Cache().ResidentBytes(); got > quota {
			t.Fatalf("resident bytes %d over quota %d", got, quota)
		}
	}
	if cl.Reg.CounterValue("client.n10.cache.evictions") == 0 {
		t.Fatal("quota never evicted")
	}
}
