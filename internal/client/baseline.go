package client

import (
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/msg"
)

// Baseline client behaviours: the lease-maintenance work prior systems
// impose on clients, which the paper's protocol eliminates. Each runs
// only under its policy.

// startBaselineTimers arms the periodic machinery after (re)registration.
func (c *Client) startBaselineTimers() {
	switch c.cfg.Policy.Lease {
	case baselines.LeaseHeartbeat:
		c.hbLastAck = c.clock.Now()
		c.hbHave = true
		c.hbSuspect = false
		c.armHeartbeat()
	case baselines.LeasePerObject:
		c.armVRenew()
		c.armVSweep()
	}
}

func (c *Client) stopBaselineTimers() {
	if c.hbTimer != nil {
		c.hbTimer.Stop()
		c.hbTimer = nil
	}
	if c.hbExpire != nil {
		c.hbExpire.Stop()
		c.hbExpire = nil
	}
	if c.hbWarn != nil {
		c.hbWarn.Stop()
		c.hbWarn = nil
	}
	if c.vRenew != nil {
		c.vRenew.Stop()
		c.vRenew = nil
	}
	if c.vSweep != nil {
		c.vSweep.Stop()
		c.vSweep = nil
	}
	if c.flushTimer != nil {
		c.flushTimer.Stop()
		c.flushTimer = nil
	}
}

// --- Heartbeat (Frangipani) -------------------------------------------------

// hbValid reports whether the heartbeat lease is current: the client may
// only use locks while its last ACKed heartbeat is younger than the TTL.
func (c *Client) hbValid() bool {
	return c.hbHave && c.clock.Now().Sub(c.hbLastAck) < c.cfg.HeartbeatTTL
}

// armHeartbeat sends heartbeats every interval, forever. Unlike the
// paper's opportunistic renewal, these messages flow even when the client
// is completely idle or fully busy — that is the measured difference.
func (c *Client) armHeartbeat() {
	if c.cfg.Policy.Lease != baselines.LeaseHeartbeat {
		return
	}
	c.armHBExpiry()
	c.armHBWarn()
	c.hbTimer = c.clock.AfterFunc(c.cfg.HeartbeatInterval, func() {
		if c.crashedFlg || !c.registered {
			return
		}
		sent := c.clock.Now()
		c.call(&msg.Heartbeat{}, func(r *msg.Reply) {
			// The lease runs from the heartbeat's SEND time (same
			// ordered-events argument as the paper's §3.1).
			if r != nil && r.Status == msg.ACK && sent.After(c.hbLastAck) {
				c.hbLastAck = sent
				c.hbSuspect = false
				c.armHBExpiry()
			}
		})
		c.armHeartbeat()
	})
}

// armHBWarn schedules the early-warning check: when no heartbeat has
// been ACKed for 60% of the TTL, the client stops accepting operations
// and flushes its dirty data while the lease is still valid. Frangipani
// itself relies on write-ahead logging plus log recovery by another node;
// flushing before the lease lapses preserves the same observable property
// (no acknowledged update is lost when a client is isolated, §5).
func (c *Client) armHBWarn() {
	if c.hbWarn != nil {
		c.hbWarn.Stop()
	}
	warnAfter := time.Duration(float64(c.cfg.HeartbeatTTL) * 0.6)
	delay := c.hbLastAck.Add(warnAfter).Sub(c.clock.Now())
	if delay < time.Microsecond {
		delay = time.Microsecond
	}
	c.hbWarn = c.clock.AfterFunc(delay, func() {
		if c.crashedFlg || !c.registered {
			return
		}
		if c.clock.Now().Sub(c.hbLastAck) < warnAfter {
			c.armHBWarn() // renewed meanwhile (or rounding); re-check later
			return
		}
		c.hbSuspect = true
		c.flushAll(nil)
	})
}

// armHBExpiry schedules the local lease-lapse check for exactly TTL after
// the last acknowledged heartbeat: the client must stop trusting its
// locks and cache before the server's TTL(1+ε) steal.
func (c *Client) armHBExpiry() {
	if c.hbExpire != nil {
		c.hbExpire.Stop()
	}
	delay := c.hbLastAck.Add(c.cfg.HeartbeatTTL).Sub(c.clock.Now())
	if delay < time.Microsecond {
		// Clock-rate conversions round; never arm a zero/negative delay
		// or the timer can fire marginally early and spin.
		delay = time.Microsecond
	}
	c.hbExpire = c.clock.AfterFunc(delay, func() {
		if c.crashedFlg || !c.registered {
			return
		}
		if c.hbValid() {
			// Fired a hair early (rounding) or the lease was renewed
			// concurrently: re-arm for the true boundary.
			c.armHBExpiry()
			return
		}
		c.recoverLeaseless()
	})
}

// --- Per-object leases (V system) --------------------------------------------

// vLeaseNote records a fresh per-object lease after a lock grant.
func (c *Client) vLeaseNote(ino msg.ObjectID) {
	if c.cfg.Policy.Lease != baselines.LeasePerObject {
		return
	}
	c.objExpiry[ino] = c.clock.Now().Add(c.cfg.PerObjectTTL)
}

// vLeaseCheck gates use of a cached lock on the object's lease validity;
// an expired object lease forces a fresh acquire (which renews it).
func (c *Client) vLeaseCheck(ino msg.ObjectID, cb ErrnoCallback) {
	if c.cfg.Policy.Lease != baselines.LeasePerObject {
		cb(msg.OK)
		return
	}
	if exp, ok := c.objExpiry[ino]; ok && c.clock.Now().Before(exp) {
		cb(msg.OK)
		return
	}
	// Lease lapsed: the lock may have been stolen. Drop and re-acquire.
	mode := c.lockedInos[ino]
	delete(c.lockedInos, ino)
	c.oracle.LockInactive(c.id, ino)
	if mode == msg.LockNone {
		mode = msg.LockShared
	}
	c.ensureLock(ino, mode, cb)
}

// armVRenew renews every cached object's lease each interval — the
// per-object message cost §4 describes ("the renewal has a message
// cost"), proportional to cache size.
func (c *Client) armVRenew() {
	if c.cfg.Policy.Lease != baselines.LeasePerObject {
		return
	}
	c.vRenew = c.clock.AfterFunc(c.cfg.PerObjectRenewInterval, func() {
		if c.crashedFlg || !c.registered {
			return
		}
		inos := make([]msg.ObjectID, 0, len(c.lockedInos))
		for ino := range c.lockedInos {
			inos = append(inos, ino)
		}
		sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
		if len(inos) > 0 {
			sent := c.clock.Now()
			c.call(&msg.RenewObjects{Inos: inos}, func(r *msg.Reply) {
				if r != nil && r.Status == msg.ACK {
					for _, ino := range inos {
						if _, still := c.lockedInos[ino]; still {
							c.objExpiry[ino] = sent.Add(c.cfg.PerObjectTTL)
						}
					}
				}
			})
		}
		c.armVRenew()
	})
}

// armVSweep purges objects whose leases are about to expire ("purge its
// cache of that object", §4). The purge — flush dirty data, stop using
// the lock, drop the pages — must COMPLETE before the lease runs out,
// because the server may steal the object the moment it has provably
// expired; so the sweep acts a TTL/4 margin early and runs at fine
// granularity. Renewals keep healthy objects far from the margin.
func (c *Client) armVSweep() {
	if c.cfg.Policy.Lease != baselines.LeasePerObject {
		return
	}
	margin := c.cfg.PerObjectTTL / 4
	c.vSweep = c.clock.AfterFunc(c.cfg.PerObjectRenewInterval/4, func() {
		if c.crashedFlg || !c.registered {
			return
		}
		horizon := c.clock.Now().Add(margin)
		expired := make([]msg.ObjectID, 0, len(c.objExpiry))
		for ino, exp := range c.objExpiry {
			if !horizon.Before(exp) {
				expired = append(expired, ino)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, ino := range expired {
			ino := ino
			// Stop handing out the cached lock immediately; the flush and
			// drop follow once in-flight operations drain.
			delete(c.objExpiry, ino)
			delete(c.lockedInos, ino)
			c.whenIdle(ino, func() {
				c.flushObject(ino, func() {
					c.oracle.LockInactive(c.id, ino)
					c.cache.Drop(ino)
				})
			})
		}
		c.armVSweep()
	})
}

// --- Function-ship + NFS-style polling ---------------------------------------

// funcShipRead ships the read to the server. In NFS mode the attribute
// cache is consulted first; a fresh GetAttr invalidates stale pages, the
// classic close-to-open-ish weak consistency (§5: "this scheme cannot
// keep caches coherent").
func (c *Client) funcShipRead(ino msg.ObjectID, idx uint64, cb DataCallback) {
	done := func(data []byte, errno msg.Errno) {
		c.finish(errno)
		cb(data, errno)
	}
	fetch := func() {
		if p := c.cache.Lookup(ino, idx); p != nil && c.cfg.Policy.NFS {
			c.oracle.Read(c.id, ino, idx, p.Ver)
			done(append([]byte(nil), p.Data...), msg.OK)
			return
		}
		c.call(&msg.FuncRead{Ino: ino, Offset: idx * BlockSize, Length: BlockSize}, func(r *msg.Reply) {
			errno := errnoOf(r)
			if errno != msg.OK {
				done(nil, errno)
				return
			}
			data := r.Body.(msg.FuncReadRes).Data
			// Server-mediated reads see committed data; the oracle is not
			// consulted on the function-ship path (no client-side write
			// versions exist to compare against). NFS mode caches the
			// page for TTL-bounded reuse.
			if c.cfg.Policy.NFS {
				c.cache.Fill(ino, idx, data, 0)
			}
			done(data, msg.OK)
		})
	}
	if !c.cfg.Policy.NFS {
		fetch()
		return
	}
	// NFS attribute polling: trust cached attrs for AttrTTL.
	if at, ok := c.attrFetched[ino]; ok && c.clock.Now().Sub(at) < c.cfg.AttrTTL {
		fetch()
		return
	}
	c.nfsPolls.Inc()
	c.call(&msg.GetAttr{Ino: ino}, func(r *msg.Reply) {
		errno := errnoOf(r)
		if errno != msg.OK {
			done(nil, errno)
			return
		}
		attr := r.Body.(msg.AttrRes).Attr
		c.attrFetched[ino] = c.clock.Now()
		o := c.cache.Ensure(ino)
		if o.HaveAttr && o.Attr.Version != attr.Version {
			c.cache.Drop(ino) // file changed: invalidate pages
			o = c.cache.Ensure(ino)
		}
		o.Attr = attr
		o.HaveAttr = true
		fetch()
	})
}

// funcShipWrite ships the write to the server (write-through).
func (c *Client) funcShipWrite(ino msg.ObjectID, idx uint64, data []byte, cb ErrnoCallback) {
	c.call(&msg.FuncWrite{Ino: ino, Offset: idx * BlockSize, Data: data}, func(r *msg.Reply) {
		errno := errnoOf(r)
		if errno == msg.OK && c.cfg.Policy.NFS {
			// NFS caches what it wrote.
			c.cache.Fill(ino, idx, data, 0)
		}
		c.finish(errno)
		cb(errno)
	})
}
