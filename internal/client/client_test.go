package client_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
)

// Direct client-behaviour tests over the simulated installation.

func boot(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(cluster.DefaultOptions())
	cl.Start()
	return cl
}

func TestOpsRefusedBeforeRegistration(t *testing.T) {
	cl := cluster.New(cluster.DefaultOptions())
	// No Start(): clients are unregistered.
	errno := msg.OK
	cl.Clients[0].Lookup("/x", func(_ msg.Attr, e msg.Errno) { errno = e })
	if errno != msg.ErrStale {
		t.Fatalf("pre-registration op errno = %v, want ErrStale", errno)
	}
	if cl.Reg.CounterValue("client.n10.ops_refused") != 1 {
		t.Fatal("refusal not counted")
	}
}

func TestBadHandleErrors(t *testing.T) {
	cl := boot(t)
	var errno msg.Errno
	done := false
	cl.Clients[0].Read(999, 0, func(_ []byte, e msg.Errno) { errno = e; done = true })
	if !done || errno != msg.ErrBadHandle {
		t.Fatalf("read bad handle = %v", errno)
	}
	done = false
	cl.Clients[0].Write(999, 0, nil, func(e msg.Errno) { errno = e; done = true })
	if !done || errno != msg.ErrBadHandle {
		t.Fatalf("write bad handle = %v", errno)
	}
	done = false
	cl.Clients[0].Close(999, func(e msg.Errno) { errno = e; done = true })
	if !done || errno != msg.ErrBadHandle {
		t.Fatalf("close bad handle = %v", errno)
	}
}

func TestWriteThroughReadOnlyHandleRefused(t *testing.T) {
	cl := boot(t)
	cl.MustOpen(0, "/ro", true, true)
	h, _, errno := cl.Open(0, "/ro", false, false) // read-only open
	if errno != msg.OK {
		t.Fatal(errno)
	}
	if e := cl.Write(0, h, 0, []byte("x")); e != msg.ErrNotHolder {
		t.Fatalf("write through RO handle = %v, want ErrNotHolder", e)
	}
}

func TestOversizedWriteRefused(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/f", true, true)
	if e := cl.Write(0, h, 0, make([]byte, cluster.BlockSize+1)); e != msg.ErrRange {
		t.Fatalf("oversized write = %v, want ErrRange", e)
	}
}

func TestOpenCreateRace(t *testing.T) {
	cl := boot(t)
	// Both clients open-create the same path concurrently; both must end
	// up with valid handles on the SAME inode.
	var a1, a2 msg.Attr
	n := 0
	cl.Clients[0].Open("/race", true, true, func(_ msg.Handle, a msg.Attr, e msg.Errno) {
		if e != msg.OK {
			t.Errorf("open 0: %v", e)
		}
		a1 = a
		n++
	})
	cl.Clients[1].Open("/race", true, true, func(_ msg.Handle, a msg.Attr, e msg.Errno) {
		if e != msg.OK {
			t.Errorf("open 1: %v", e)
		}
		a2 = a
		n++
	})
	cl.Sched.RunWhile(func() bool { return n < 2 })
	if a1.Ino == 0 || a1.Ino != a2.Ino {
		t.Fatalf("race produced inos %v and %v", a1.Ino, a2.Ino)
	}
}

func TestLockCachingMakesRepeatOpsFree(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/hot", true, true)
	if e := cl.Write(0, h, 0, make([]byte, 64)); e != msg.OK {
		t.Fatal(e)
	}
	sent0 := cl.Reg.CounterValue("client.n10.chan.sent")
	// 50 more writes and reads of the same block: lock cached, map
	// cached, page cached — zero control messages.
	for i := 0; i < 50; i++ {
		if e := cl.Write(0, h, 0, make([]byte, 64)); e != msg.OK {
			t.Fatal(e)
		}
		if _, e := cl.Read(0, h, 0); e != msg.OK {
			t.Fatal(e)
		}
	}
	if got := cl.Reg.CounterValue("client.n10.chan.sent"); got != sent0 {
		t.Fatalf("hot path sent %d control messages", got-sent0)
	}
}

func TestReleaseLockDropsState(t *testing.T) {
	cl := boot(t)
	h, attr := cl.MustOpen(0, "/rel", true, true)
	if e := cl.Write(0, h, 0, []byte("data")); e != msg.OK {
		t.Fatal(e)
	}
	done := false
	var errno msg.Errno
	cl.Clients[0].ReleaseLock(attr.Ino, func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatalf("release: %v", errno)
	}
	if cl.Clients[0].Cache().Object(attr.Ino) != nil {
		t.Fatal("cache object survived release")
	}
	if cl.Server.Locks().Held(cluster.ClientID(0), attr.Ino) != msg.LockNone {
		t.Fatal("server still records the lock")
	}
	// The dirty write was flushed (not lost) before release.
	data, e := cl.Read(1, mustOpen(t, cl, 1, "/rel"), 0)
	if e != msg.OK || string(data[:4]) != "data" {
		t.Fatalf("post-release read: %v %q", e, data[:4])
	}
}

func mustOpen(t *testing.T, cl *cluster.Cluster, i int, path string) msg.Handle {
	t.Helper()
	h, _, errno := cl.Open(i, path, false, false)
	if errno != msg.OK {
		t.Fatalf("open %s: %v", path, errno)
	}
	return h
}

func TestQuiescedClientRefusesNewOps(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/q", true, true)
	cl.Write(0, h, 0, []byte("x"))
	cl.IsolateClient(0)
	// Run into phase 3 (quiesce begins at 0.70τ).
	cl.RunFor(8 * time.Second)
	if !cl.Clients[0].Quiesced() {
		t.Fatalf("client not quiesced (phase %v)", cl.Clients[0].Lease().Phase())
	}
	errno := msg.OK
	cl.Clients[0].Read(h, 0, func(_ []byte, e msg.Errno) { errno = e })
	if errno != msg.ErrStale {
		t.Fatalf("quiesced read = %v, want ErrStale", errno)
	}
}

func TestSyncIdempotent(t *testing.T) {
	cl := boot(t)
	if e := cl.Sync(0); e != msg.OK {
		t.Fatalf("sync with clean cache: %v", e)
	}
	h, _ := cl.MustOpen(0, "/s", true, true)
	cl.Write(0, h, 0, []byte("x"))
	if e := cl.Sync(0); e != msg.OK {
		t.Fatal(e)
	}
	if e := cl.Sync(0); e != msg.OK {
		t.Fatalf("second sync: %v", e)
	}
	if cl.Clients[0].Cache().TotalDirty() != 0 {
		t.Fatal("dirty after sync")
	}
}

func TestInflightGaugeReturnsToZero(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/g", true, true)
	for i := 0; i < 5; i++ {
		cl.Clients[0].Write(h, uint64(i), make([]byte, 8), func(msg.Errno) {})
	}
	cl.RunFor(2 * time.Second)
	if n := cl.Clients[0].Inflight(); n != 0 {
		t.Fatalf("inflight = %d after drain", n)
	}
}

func TestEpochAdvancesAcrossRecovery(t *testing.T) {
	cl := boot(t)
	e1 := cl.Clients[0].Epoch()
	h, _ := cl.MustOpen(0, "/e", true, true)
	cl.Write(0, h, 0, []byte("x"))
	cl.IsolateClient(0)
	// Force the full expiry (survivor contention not needed).
	cl.RunFor(12 * time.Second)
	cl.HealControl()
	cl.RunFor(5 * time.Second)
	if !cl.Clients[0].Registered() {
		t.Fatal("client did not rejoin")
	}
	if e2 := cl.Clients[0].Epoch(); e2 <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, e2)
	}
	// The old handle is dead after recovery.
	if _, e := cl.Read(0, h, 0); e == msg.OK {
		t.Fatal("pre-recovery handle still works")
	}
}

func TestPeriodicWriteBack(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.FlushInterval = 500 * time.Millisecond
	cl := cluster.New(opts)
	cl.Start()
	h, _ := cl.MustOpen(0, "/wb", true, true)
	if e := cl.Write(0, h, 0, []byte("periodic")); e != msg.OK {
		t.Fatal(e)
	}
	if cl.Clients[0].Cache().TotalDirty() != 1 {
		t.Fatal("setup: not dirty")
	}
	// No Sync, no demand: the background flush alone must clean the page.
	cl.RunFor(2 * time.Second)
	if cl.Clients[0].Cache().TotalDirty() != 0 {
		t.Fatal("periodic write-back did not flush")
	}
	// The page is still cached (clean), not dropped.
	obj := cl.Clients[0].Cache().Object(2)
	if obj == nil || obj.Page(0) == nil || obj.Page(0).Dirty {
		t.Fatal("flushed page missing or still dirty")
	}
}

func TestUnlinkFlow(t *testing.T) {
	cl := boot(t)
	done := false
	var errno msg.Errno
	cl.Clients[0].Create("/gone", false, func(_ msg.Attr, e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatal(errno)
	}
	done = false
	cl.Clients[0].Unlink("/gone", func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatalf("unlink: %v", errno)
	}
	done = false
	cl.Clients[0].Lookup("/gone", func(_ msg.Attr, e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.ErrNoEnt {
		t.Fatalf("lookup after unlink = %v, want ErrNoEnt", errno)
	}
}

func TestReaddirThroughClient(t *testing.T) {
	cl := boot(t)
	cl.MustOpen(0, "/lsfile", true, true)
	var entries []msg.DirEntry
	done := false
	cl.Clients[0].Readdir(1, func(es []msg.DirEntry, e msg.Errno) { entries = es; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	found := false
	for _, e := range entries {
		if e.Name == "lsfile" {
			found = true
		}
	}
	if !found {
		t.Fatalf("readdir missing file: %v", entries)
	}
}

func TestRenameFlow(t *testing.T) {
	cl := boot(t)
	cl.MustOpen(0, "/old", true, true)
	// Rename is refused while the creator's exclusive lock stands... but
	// Open alone takes no data lock, so this rename goes through.
	done := false
	var errno msg.Errno
	cl.Clients[0].Rename("/old", "/new", func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatalf("rename: %v", errno)
	}
	done = false
	cl.Clients[0].Lookup("/new", func(_ msg.Attr, e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatal("renamed file not found")
	}
	done = false
	cl.Clients[0].Lookup("/old", func(_ msg.Attr, e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.ErrNoEnt {
		t.Fatal("old name still resolves")
	}
}

func TestRenameLockedRefused(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/busy", true, true)
	if e := cl.Write(0, h, 0, []byte("x")); e != msg.OK {
		t.Fatal(e)
	}
	done := false
	var errno msg.Errno
	cl.Clients[1].Rename("/busy", "/elsewhere", func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.ErrConflict {
		t.Fatalf("rename of locked file = %v, want ErrConflict", errno)
	}
}

func TestTruncateFlow(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(0, "/trunc", true, true)
	for i := uint64(0); i < 4; i++ {
		if e := cl.Write(0, h, i, []byte{byte('a' + i)}); e != msg.OK {
			t.Fatal(e)
		}
	}
	if e := cl.Sync(0); e != msg.OK {
		t.Fatal(e)
	}
	done := false
	var errno msg.Errno
	cl.Clients[0].Truncate(h, 2, func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.OK {
		t.Fatalf("truncate: %v", errno)
	}
	// Reads past the cut see zeros (the pages and blocks are gone).
	data, e := cl.Read(0, h, 3)
	if e != msg.OK || data[0] != 0 {
		t.Fatalf("post-truncate read: %v %q", e, data[0])
	}
	// Reads below the cut still see the data.
	data, e = cl.Read(0, h, 1)
	if e != msg.OK || data[0] != 'b' {
		t.Fatalf("kept block read: %v %q", e, data[0])
	}
	// Server-side blocks freed.
	in, _ := cl.Server.Store().Lookup("/trunc")
	if len(in.Blocks) != 2 {
		t.Fatalf("server block map = %d blocks", len(in.Blocks))
	}
	// Truncate through a read-only handle is refused.
	hr, _, _ := cl.Open(1, "/trunc", false, false)
	done = false
	cl.Clients[1].Truncate(hr, 0, func(e msg.Errno) { errno = e; done = true })
	cl.Sched.RunWhile(func() bool { return !done })
	if errno != msg.ErrNotHolder {
		t.Fatalf("RO truncate = %v, want ErrNotHolder", errno)
	}
}

func TestTruncateContendedRefused(t *testing.T) {
	cl := boot(t)
	h0, _ := cl.MustOpen(0, "/shared-trunc", true, true)
	if e := cl.Write(0, h0, 0, []byte("x")); e != msg.OK {
		t.Fatal(e)
	}
	if e := cl.Sync(0); e != msg.OK {
		t.Fatal(e)
	}
	// Reader takes a shared lock.
	h1, _, _ := cl.Open(1, "/shared-trunc", false, false)
	if _, e := cl.Read(1, h1, 0); e != msg.OK {
		t.Fatal(e)
	}
	// Writer 0 (now downgraded to shared) truncates: ensureLock upgrades
	// to exclusive first (demanding the reader away), so it succeeds.
	done := false
	var errno msg.Errno
	cl.Clients[0].Truncate(h0, 0, func(e msg.Errno) { errno = e; done = true })
	deadline := cl.Sched.Now().Add(30 * time.Second)
	cl.Sched.RunWhile(func() bool { return !done && !cl.Sched.Now().After(deadline) })
	if !done || errno != msg.OK {
		t.Fatalf("contended truncate: done=%v errno=%v", done, errno)
	}
}

func TestCachePressureRefetchesFromSAN(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.CacheMaxPages = 4
	cl := cluster.New(opts)
	cl.Start()
	h, _ := cl.MustOpen(0, "/pressure", true, true)
	for i := uint64(0); i < 8; i++ {
		if e := cl.Write(0, h, i, []byte{byte('a' + i)}); e != msg.OK {
			t.Fatal(e)
		}
	}
	if e := cl.Sync(0); e != msg.OK {
		t.Fatal(e)
	}
	// Eight pages were written but only four fit; the rest were evicted
	// after the flush. Every read must still return the right data
	// (refetched from the SAN), and evictions must have happened.
	for i := uint64(0); i < 8; i++ {
		data, e := cl.Read(0, h, i)
		if e != msg.OK || data[0] != byte('a'+i) {
			t.Fatalf("read %d: %v %q", i, e, data[0])
		}
	}
	if cl.Reg.CounterValue("client.n10.cache.evictions") == 0 {
		t.Fatal("no evictions under pressure")
	}
	if got := cl.Clients[0].Cache().ResidentPages(); got > 4 {
		t.Fatalf("resident pages = %d > capacity", got)
	}
	cl.Checker.FinalCheck()
	if len(cl.Checker.Violations()) != 0 {
		t.Fatalf("violations: %v", cl.Checker.Violations())
	}
}
