package client

import (
	"repro/internal/baselines"
	"repro/internal/disk"
	"repro/internal/msg"
)

// BlockSize re-exports the device block size: client reads and writes are
// whole blocks addressed by index within the file.
const BlockSize = disk.BlockSize

// AttrCallback receives metadata results.
type AttrCallback func(attr msg.Attr, errno msg.Errno)

// DataCallback receives read results.
type DataCallback func(data []byte, errno msg.Errno)

// ErrnoCallback receives plain outcomes.
type ErrnoCallback func(errno msg.Errno)

// OpenCallback receives open results.
type OpenCallback func(h msg.Handle, attr msg.Attr, errno msg.Errno)

// DirCallback receives directory listings.
type DirCallback func(entries []msg.DirEntry, errno msg.Errno)

// ReplicaInfoCallback receives a replica role query's result.
type ReplicaInfoCallback func(info msg.ReplicaInfoRes, errno msg.Errno)

// begin gates a new operation and tracks in-flight counts. It returns
// false (after failing the op) when the client must not service requests
// (phase ≥ 3, unregistered, crashed): the paper's contract — a client
// without a valid lease does not operate on data.
func (c *Client) begin(fail func(errno msg.Errno)) bool {
	if !c.admitted() {
		c.staleEps.Inc()
		fail(msg.ErrStale)
		return false
	}
	c.inflight++
	return true
}

// finish completes an operation.
func (c *Client) finish(errno msg.Errno) {
	c.inflight--
	if errno == msg.OK {
		c.opsOK.Inc()
	} else {
		c.opsFailed.Inc()
	}
}

// errnoOf maps a channel outcome to an Errno.
func errnoOf(r *msg.Reply) msg.Errno {
	switch {
	case r == nil:
		return msg.ErrStale // cancelled: lease expired mid-operation
	case r.Status == msg.NACK:
		return msg.ErrStale
	default:
		return r.Err
	}
}

// ReplicaInfo asks whichever replica the channel currently targets for
// its role, last ballot, and who it believes holds the authority lease —
// the operator query behind tankcli's `role` command and the SIGUSR1
// dump. It bypasses the lease admission gate: servers answer it before
// registration/epoch checks (even a passive replica answers — that is
// the point), and the reply is lease-neutral.
func (c *Client) ReplicaInfo(cb ReplicaInfoCallback) {
	c.chn.Call(&msg.ReplicaInfo{}, func(r *msg.Reply) {
		switch {
		case r == nil:
			cb(msg.ReplicaInfoRes{}, msg.ErrStale)
		case r.Err != msg.OK:
			cb(msg.ReplicaInfoRes{}, r.Err)
		default:
			cb(r.Body.(msg.ReplicaInfoRes), msg.OK)
		}
	})
}

// Lookup resolves a path.
func (c *Client) Lookup(path string, cb AttrCallback) {
	if !c.begin(func(e msg.Errno) { cb(msg.Attr{}, e) }) {
		return
	}
	c.call(&msg.Lookup{Path: path}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		if errno != msg.OK {
			cb(msg.Attr{}, errno)
			return
		}
		cb(r.Body.(msg.LookupRes).Attr, msg.OK)
	})
}

// Create makes a file or directory.
func (c *Client) Create(path string, isDir bool, cb AttrCallback) {
	if !c.begin(func(e msg.Errno) { cb(msg.Attr{}, e) }) {
		return
	}
	c.call(&msg.Create{Path: path, IsDir: isDir}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		if errno != msg.OK {
			cb(msg.Attr{}, errno)
			return
		}
		cb(r.Body.(msg.CreateRes).Attr, msg.OK)
	})
}

// Unlink removes a path.
func (c *Client) Unlink(path string, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	c.call(&msg.Unlink{Path: path}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		cb(errno)
	})
}

// Rename moves an object. The server refuses while data locks are held
// on it (keep the rule uniform with Unlink).
func (c *Client) Rename(oldPath, newPath string, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	c.call(&msg.Rename{OldPath: oldPath, NewPath: newPath}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		cb(errno)
	})
}

// Truncate shrinks the file to nBlocks blocks. It requires the exclusive
// lock (acquired here if not cached), drops the truncated tail from the
// cache, and updates the cached block map from the server's reply.
func (c *Client) Truncate(h msg.Handle, nBlocks uint32, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	info, ok := c.handles[h]
	if !ok {
		c.finish(msg.ErrBadHandle)
		cb(msg.ErrBadHandle)
		return
	}
	if !info.write {
		c.finish(msg.ErrNotHolder)
		cb(msg.ErrNotHolder)
		return
	}
	c.ensureLock(info.ino, msg.LockExclusive, func(errno msg.Errno) {
		if errno != msg.OK {
			c.finish(errno)
			cb(errno)
			return
		}
		c.ioBegin(info.ino)
		done := func(errno msg.Errno) {
			c.ioEnd(info.ino)
			c.finish(errno)
			cb(errno)
		}
		c.call(&msg.Truncate{Ino: info.ino, Blocks: nBlocks}, func(r *msg.Reply) {
			errno := errnoOf(r)
			if errno != msg.OK {
				done(errno)
				return
			}
			res := r.Body.(msg.AttrRes)
			o := c.cache.Ensure(info.ino)
			// Drop truncated pages (dirty or clean — their blocks are
			// returning to the allocator and must never be served again).
			c.cache.DropPagesFrom(info.ino, uint64(nBlocks))
			if uint64(len(o.Blocks)) > uint64(nBlocks) {
				o.Blocks = o.Blocks[:nBlocks]
			}
			o.Attr = res.Attr
			o.HaveAttr = true
			done(msg.OK)
		})
	})
}

// Readdir lists a directory by inode.
func (c *Client) Readdir(ino msg.ObjectID, cb DirCallback) {
	if !c.begin(func(e msg.Errno) { cb(nil, e) }) {
		return
	}
	c.call(&msg.Readdir{Ino: ino}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		if errno != msg.OK {
			cb(nil, errno)
			return
		}
		cb(r.Body.(msg.ReaddirRes).Entries, msg.OK)
	})
}

// Stat fetches attributes by inode.
func (c *Client) Stat(ino msg.ObjectID, cb AttrCallback) {
	if !c.begin(func(e msg.Errno) { cb(msg.Attr{}, e) }) {
		return
	}
	c.call(&msg.GetAttr{Ino: ino}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		if errno != msg.OK {
			cb(msg.Attr{}, errno)
			return
		}
		cb(r.Body.(msg.AttrRes).Attr, msg.OK)
	})
}

// Open resolves a path and opens it, creating the file when create is
// set.
func (c *Client) Open(path string, write, create bool, cb OpenCallback) {
	if !c.begin(func(e msg.Errno) { cb(0, msg.Attr{}, e) }) {
		return
	}
	c.call(&msg.Lookup{Path: path}, func(r *msg.Reply) {
		errno := errnoOf(r)
		switch {
		case errno == msg.OK:
			c.openIno(r.Body.(msg.LookupRes).Attr.Ino, write, cb)
		case errno == msg.ErrNoEnt && create:
			c.call(&msg.Create{Path: path, IsDir: false}, func(r2 *msg.Reply) {
				errno2 := errnoOf(r2)
				if errno2 != msg.OK && errno2 != msg.ErrExist {
					c.finish(errno2)
					cb(0, msg.Attr{}, errno2)
					return
				}
				if errno2 == msg.ErrExist {
					// Lost a create race; open via lookup again.
					c.call(&msg.Lookup{Path: path}, func(r3 *msg.Reply) {
						errno3 := errnoOf(r3)
						if errno3 != msg.OK {
							c.finish(errno3)
							cb(0, msg.Attr{}, errno3)
							return
						}
						c.openIno(r3.Body.(msg.LookupRes).Attr.Ino, write, cb)
					})
					return
				}
				c.openIno(r2.Body.(msg.CreateRes).Attr.Ino, write, cb)
			})
		default:
			c.finish(errno)
			cb(0, msg.Attr{}, errno)
		}
	})
}

// openIno finishes an Open once the inode is known.
func (c *Client) openIno(ino msg.ObjectID, write bool, cb OpenCallback) {
	c.call(&msg.Open{Ino: ino, Write: write}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		if errno != msg.OK {
			cb(0, msg.Attr{}, errno)
			return
		}
		res := r.Body.(msg.OpenRes)
		c.handles[res.Handle] = handleInfo{ino: ino, write: write}
		o := c.cache.Ensure(ino)
		o.Attr = res.Attr
		o.HaveAttr = true
		cb(res.Handle, res.Attr, msg.OK)
	})
}

// Close releases an open instance. Cached data and locks are kept — data
// locks outlive opens; that is the point of lock caching.
func (c *Client) Close(h msg.Handle, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	info, ok := c.handles[h]
	if !ok {
		c.finish(msg.ErrBadHandle)
		cb(msg.ErrBadHandle)
		return
	}
	delete(c.handles, h)
	_ = info
	c.call(&msg.Close{Ino: info.ino, Handle: h}, func(r *msg.Reply) {
		errno := errnoOf(r)
		c.finish(errno)
		cb(errno)
	})
}

// Read returns the file block at index idx. The fast path — lock cached,
// map cached, page cached — completes synchronously with zero messages.
func (c *Client) Read(h msg.Handle, idx uint64, cb DataCallback) {
	if !c.begin(func(e msg.Errno) { cb(nil, e) }) {
		return
	}
	info, ok := c.handles[h]
	if !ok {
		c.finish(msg.ErrBadHandle)
		cb(nil, msg.ErrBadHandle)
		return
	}
	c.reads.Inc()
	if c.cfg.Policy.Data == baselines.DataFunctionShip {
		c.funcShipRead(info.ino, idx, cb)
		return
	}
	if c.cfg.Policy.DLock {
		c.dlockRead(info.ino, idx, cb)
		return
	}
	c.ensureLock(info.ino, msg.LockShared, func(errno msg.Errno) {
		if errno != msg.OK {
			c.finish(errno)
			cb(nil, errno)
			return
		}
		// Hold the lock pinned (drain-before-downgrade) for the rest of
		// the operation.
		c.ioBegin(info.ino)
		done := func(data []byte, errno msg.Errno) {
			c.ioEnd(info.ino)
			c.finish(errno)
			cb(data, errno)
		}
		c.ensureMap(info.ino, func(errno msg.Errno) {
			if errno != msg.OK {
				done(nil, errno)
				return
			}
			c.readBlock(info.ino, idx, done)
		})
	})
}

// readBlock serves one block from cache or the SAN.
func (c *Client) readBlock(ino msg.ObjectID, idx uint64, done DataCallback) {
	// Feed the sequential detector before serving: read-ahead targets
	// blocks AFTER idx, so it never races the block being read here.
	c.notePrefetchRead(ino, idx)
	if p := c.cache.Lookup(ino, idx); p != nil {
		c.oracle.Read(c.id, ino, idx, p.Ver)
		done(append([]byte(nil), p.Data...), msg.OK)
		return
	}
	if c.prefetchInflight[ino][idx] {
		// A read-ahead batch already has this block on the wire: ride it
		// instead of duplicating the SAN round trip.
		c.waitForPrefetch(ino, idx, done)
		return
	}
	o := c.cache.Object(ino)
	if o == nil || idx >= uint64(len(o.Blocks)) {
		// Unallocated block: zeros (a hole).
		c.oracle.Read(c.id, ino, idx, 0)
		done(make([]byte, BlockSize), msg.OK)
		return
	}
	ref := o.Blocks[idx]
	c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
		return &msg.DiskRead{Client: c.id, Req: req, Block: ref.Num}
	}, func(reply msg.Message, errno msg.Errno) {
		if errno != msg.OK || reply == nil {
			done(nil, errno)
			return
		}
		res := reply.(*msg.DiskReadRes)
		c.cache.Fill(ino, idx, res.Data, res.Ver)
		c.oracle.Read(c.id, ino, idx, res.Ver)
		done(append([]byte(nil), res.Data...), msg.OK)
	})
}

// Write stores a whole block at index idx into the write-back cache. It
// completes as soon as the data is cached under an exclusive lock; the
// data reaches the SAN on demand, periodic flush, or lease phase 4.
func (c *Client) Write(h msg.Handle, idx uint64, data []byte, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	info, ok := c.handles[h]
	if !ok {
		c.finish(msg.ErrBadHandle)
		cb(msg.ErrBadHandle)
		return
	}
	if !info.write {
		c.finish(msg.ErrNotHolder)
		cb(msg.ErrNotHolder)
		return
	}
	if len(data) > BlockSize {
		c.finish(msg.ErrRange)
		cb(msg.ErrRange)
		return
	}
	c.writes.Inc()
	if c.cfg.Policy.Data == baselines.DataFunctionShip {
		c.funcShipWrite(info.ino, idx, data, cb)
		return
	}
	if c.cfg.Policy.DLock {
		c.dlockWrite(info.ino, idx, data, cb)
		return
	}
	c.ensureLock(info.ino, msg.LockExclusive, func(errno msg.Errno) {
		if errno != msg.OK {
			c.finish(errno)
			cb(errno)
			return
		}
		c.ioBegin(info.ino)
		done := func(errno msg.Errno) {
			c.ioEnd(info.ino)
			c.finish(errno)
			cb(errno)
		}
		c.ensureMap(info.ino, func(errno msg.Errno) {
			if errno != msg.OK {
				done(errno)
				return
			}
			c.ensureAlloc(info.ino, idx, func(errno msg.Errno) {
				if errno != msg.OK {
					done(errno)
					return
				}
				ver := c.oracle.NextVer(c.id, info.ino, idx)
				c.cache.Write(info.ino, idx, data, ver)
				c.maybeExtend(info.ino, idx, len(data))
				done(msg.OK)
			})
		})
	})
}

// maybeExtend pushes the server's size metadata forward after a write
// past the current end of file.
func (c *Client) maybeExtend(ino msg.ObjectID, idx uint64, n int) {
	o := c.cache.Object(ino)
	end := idx*BlockSize + uint64(n)
	if o == nil || !o.HaveAttr || end <= o.Attr.Size {
		return
	}
	o.Attr.Size = end
	c.call(&msg.SetAttr{Ino: ino, NewSize: end}, nil)
}

// Sync flushes all dirty data and completes when everything is on disk.
func (c *Client) Sync(cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	c.flushAll(func() {
		c.finish(msg.OK)
		cb(msg.OK)
	})
}

// ensureLock acquires (or upgrades to) mode on ino, using the cached lock
// when it covers the request.
func (c *Client) ensureLock(ino msg.ObjectID, mode msg.LockMode, cb ErrnoCallback) {
	// Gate: deferred acquires (below) can fire from teardown paths; an
	// op whose client is quiescing, expired, or mid-recovery must fail
	// rather than emit a lock request the current lease cannot cover.
	if !c.admitted() {
		cb(msg.ErrStale)
		return
	}
	// Order every lock use behind any in-flight downgrade of this
	// object. This covers two hazards at once: a fresh acquire must not
	// overtake the downgrade on the wire, and a cached-lock fast path
	// must not start new work (in particular, dirty new pages) while a
	// revocation is between its flush and its downgrade report.
	if c.downgrading[ino] > 0 {
		c.afterDowngrades(ino, func() { c.ensureLock(ino, mode, cb) })
		return
	}
	if held := c.lockedInos[ino]; held.Covers(mode) {
		c.vLeaseCheck(ino, cb)
		return
	}
	seq := c.demandSeq[ino]
	epoch := c.chn.Epoch()
	c.call(&msg.LockAcquire{Ino: ino, Mode: mode}, func(r *msg.Reply) {
		errno := errnoOf(r)
		if errno != msg.OK {
			cb(errno)
			return
		}
		if c.chn.Epoch() != epoch {
			// The grant belongs to a previous registration: the server
			// rebuilt its state (our rejoin stole everything) after
			// executing this request. The lock no longer exists.
			cb(msg.ErrStale)
			return
		}
		if c.demandSeq[ino] != seq {
			// A demand crossed this grant on the wire: the server issued
			// the demand after making the grant, and our compliance reply
			// told it the grant is relinquished. Applying the grant now
			// would fabricate a lock two clients believe they hold; ask
			// again instead.
			c.ensureLock(ino, mode, cb)
			return
		}
		granted := r.Body.(msg.LockRes).Mode
		if cur := c.lockedInos[ino]; granted > cur {
			c.lockedInos[ino] = granted
			c.cache.Ensure(ino).Mode = granted
			c.oracle.LockActive(c.id, ino, granted)
		}
		c.vLeaseNote(ino)
		cb(msg.OK)
	})
}

// ensureMap fetches the block map if not cached.
func (c *Client) ensureMap(ino msg.ObjectID, cb ErrnoCallback) {
	o := c.cache.Ensure(ino)
	if o.HaveMap {
		cb(msg.OK)
		return
	}
	c.call(&msg.GetBlocks{Ino: ino}, func(r *msg.Reply) {
		errno := errnoOf(r)
		if errno != msg.OK {
			cb(errno)
			return
		}
		res := r.Body.(msg.BlocksRes)
		o := c.cache.Ensure(ino)
		o.Blocks = res.Blocks
		o.Attr = res.Attr
		o.HaveMap = true
		o.HaveAttr = true
		cb(msg.OK)
	})
}

// ensureAlloc extends the file's allocation to cover block idx.
func (c *Client) ensureAlloc(ino msg.ObjectID, idx uint64, cb ErrnoCallback) {
	o := c.cache.Ensure(ino)
	if idx < uint64(len(o.Blocks)) {
		cb(msg.OK)
		return
	}
	need := uint32(idx + 1 - uint64(len(o.Blocks)))
	c.call(&msg.AllocBlocks{Ino: ino, Count: need}, func(r *msg.Reply) {
		errno := errnoOf(r)
		if errno != msg.OK {
			cb(errno)
			return
		}
		res := r.Body.(msg.AllocRes)
		o := c.cache.Ensure(ino)
		o.Blocks = res.Blocks
		o.Attr = res.Attr
		o.HaveMap = true
		o.HaveAttr = true
		cb(msg.OK)
	})
}

// ReleaseLock voluntarily gives a data lock back (used by workloads that
// model cache pressure).
func (c *Client) ReleaseLock(ino msg.ObjectID, cb ErrnoCallback) {
	if !c.begin(func(e msg.Errno) { cb(e) }) {
		return
	}
	c.flushObject(ino, func() {
		delete(c.lockedInos, ino)
		c.oracle.LockInactive(c.id, ino)
		c.cache.Drop(ino)
		delete(c.objExpiry, ino)
		c.downgradeBegin(ino)
		c.call(&msg.LockRelease{Ino: ino, To: msg.LockNone}, func(r *msg.Reply) {
			c.downgradeEnd(ino)
			errno := errnoOf(r)
			c.finish(errno)
			cb(errno)
		})
	})
}
