package client

import "repro/internal/msg"

// GFS-baseline data path (§5): locking is physical — an expiring lock on
// a disk-address range, taken from the disk itself — and there is no data
// caching, because nothing revokes a remote cache when the range changes
// hands. Every operation pays the dlock round-trips; that cost, compared
// with Storage Tank's cached logical locks, is experiment T4.

// dlockRead performs lock → read → unlock against the owning disk.
func (c *Client) dlockRead(ino msg.ObjectID, idx uint64, cb DataCallback) {
	done := func(data []byte, errno msg.Errno) {
		c.finish(errno)
		cb(data, errno)
	}
	c.ensureMap(ino, func(errno msg.Errno) {
		if errno != msg.OK {
			done(nil, errno)
			return
		}
		o := c.cache.Object(ino)
		if idx >= uint64(len(o.Blocks)) {
			c.oracle.Read(c.id, ino, idx, 0)
			done(make([]byte, BlockSize), msg.OK)
			return
		}
		ref := o.Blocks[idx]
		c.withDlock(ref, func(errno msg.Errno, unlock func(func())) {
			if errno != msg.OK {
				done(nil, errno)
				return
			}
			c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
				return &msg.DiskRead{Client: c.id, Req: req, Block: ref.Num}
			}, func(reply msg.Message, rerrno msg.Errno) {
				unlock(func() {
					if rerrno != msg.OK || reply == nil {
						done(nil, rerrno)
						return
					}
					res := reply.(*msg.DiskReadRes)
					c.oracle.Read(c.id, ino, idx, res.Ver)
					// res.Data may alias a pooled receive buffer; the
					// callback keeps the data past this handler.
					done(append([]byte(nil), res.Data...), msg.OK)
				})
			})
		})
	})
}

// dlockWrite performs lock → write → unlock (write-through; no cache).
func (c *Client) dlockWrite(ino msg.ObjectID, idx uint64, data []byte, cb ErrnoCallback) {
	done := func(errno msg.Errno) {
		c.finish(errno)
		cb(errno)
	}
	c.ensureMap(ino, func(errno msg.Errno) {
		if errno != msg.OK {
			done(errno)
			return
		}
		c.ensureAlloc(ino, idx, func(errno msg.Errno) {
			if errno != msg.OK {
				done(errno)
				return
			}
			ref := c.cache.Object(ino).Blocks[idx]
			c.withDlock(ref, func(errno msg.Errno, unlock func(func())) {
				if errno != msg.OK {
					done(errno)
					return
				}
				ver := c.oracle.NextVer(c.id, ino, idx)
				c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
					return &msg.DiskWrite{Client: c.id, Req: req, Block: ref.Num, Data: data, Ver: ver}
				}, func(reply msg.Message, werrno msg.Errno) {
					if werrno == msg.OK {
						c.oracle.Committed(c.id, ino, idx, ver)
					}
					unlock(func() {
						c.maybeExtend(ino, idx, len(data))
						done(werrno)
					})
				})
			})
		})
	})
}

// withDlock acquires the range lock (retrying while another initiator
// holds it), then hands the caller an unlock function that releases and
// runs a continuation.
func (c *Client) withDlock(ref msg.BlockRef, fn func(errno msg.Errno, unlock func(func()))) {
	var attempt func()
	attempt = func() {
		c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
			return &msg.DLockAcquire{Client: c.id, Req: req, Start: ref.Num, Count: 1, TTL: c.cfg.Core.Tau}
		}, func(reply msg.Message, errno msg.Errno) {
			switch errno {
			case msg.ErrDLockHeld:
				// Contended: retry after a backoff. GFS clients poll the
				// disk; the disk's TTL eventually frees dead holders.
				c.clock.AfterFunc(c.cfg.Core.RetryInterval, attempt)
				return
			case msg.OK:
				fn(msg.OK, func(cont func()) {
					c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
						return &msg.DLockRelease{Client: c.id, Req: req, Start: ref.Num, Count: 1}
					}, func(msg.Message, msg.Errno) { cont() })
				})
			default:
				fn(errno, nil)
			}
		})
	}
	attempt()
}
