// Package client implements the Storage Tank file-system client: the
// write-back cache, direct SAN data path, lock caching, demand
// compliance, and — through internal/core — the four-phase lease state
// machine that makes caching safe when the control network fails.
//
// The client is fully event-driven: every file-system operation is
// asynchronous, completing through a callback, so the same code runs
// under the deterministic simulator and under the live TCP transport.
// Baseline behaviours (heartbeat leases, per-object leases, no lease,
// function-shipped data, NFS-style polling) are selected by
// baselines.Policy so that comparisons exercise identical code paths
// everywhere except the safety mechanism under test.
package client

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/bufpool"
	"repro/internal/cache"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Sender transmits a message on one of the two networks.
type Sender func(to msg.NodeID, m msg.Message)

// Config parameterizes a client.
type Config struct {
	Core   core.Config
	Policy baselines.Policy
	// FlushInterval, when nonzero, write-backs dirty data periodically
	// even without demands (bounds the at-risk window).
	FlushInterval time.Duration
	// HeartbeatInterval/HeartbeatTTL drive the Frangipani baseline
	// (defaults: TTL = Core.Tau, interval = TTL/3).
	HeartbeatInterval time.Duration
	HeartbeatTTL      time.Duration
	// PerObjectTTL/PerObjectRenewInterval drive the V baseline
	// (defaults: TTL = Core.Tau, interval = TTL/2).
	PerObjectTTL           time.Duration
	PerObjectRenewInterval time.Duration
	// AttrTTL drives the NFS-poll baseline's attribute cache (default
	// 3s, NFS's classic actimeo floor).
	AttrTTL time.Duration
	// DisableReassert (ablation): skip lock reassertion after a server
	// restart and always run the full lease recovery (cache loss).
	DisableReassert bool
	// CacheMaxPages bounds the resident data cache; clean pages are
	// evicted LRU beyond it (0 = unbounded). Dirty pages are pinned.
	CacheMaxPages int
	// CacheQuota bounds the resident data cache in bytes, counted after
	// content dedup — pages sharing one content block cost its size once
	// (0 = unbounded). Clean pages are evicted LRU beyond it; dirty
	// pages are pinned. Both CacheMaxPages and CacheQuota may be set.
	CacheQuota int64
	// FlushBatch bounds how many dirty pages one vectored SAN write may
	// carry (per target disk). 0 selects DefaultFlushBatch; 1 disables
	// coalescing and restores the per-page DiskWrite flush path.
	FlushBatch int
	// Prefetch is the read-ahead window: after two consecutive block
	// reads the client issues one vectored SAN read for the next N
	// uncached blocks. 0 selects DefaultPrefetch; negative disables
	// read-ahead.
	Prefetch int
	// SANReqBase offsets the client's SAN request-ID sequence. Sharded
	// nodes run one Client per lease authority sharing a single SAN
	// identity; disjoint bases keep their request IDs from colliding and
	// let the router demultiplex disk replies back to the issuing
	// sub-client (DESIGN.md §14).
	SANReqBase msg.ReqID
	// Replicas, when the authority is replicated, lists the full replica
	// group for this client's server (including the primary). The channel
	// rotates among them on ErrNotActive redirects and on silent targets
	// (DESIGN.md §15).
	Replicas []msg.NodeID
}

// DefaultFlushBatch is the flush coalescing bound used when
// Config.FlushBatch is zero.
const DefaultFlushBatch = 32

// DefaultPrefetch is the read-ahead window used when Config.Prefetch is
// zero.
const DefaultPrefetch = 3

func (c Config) withDefaults() Config {
	if c.HeartbeatTTL == 0 {
		c.HeartbeatTTL = c.Core.Tau
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = c.HeartbeatTTL / 3
	}
	if c.PerObjectTTL == 0 {
		c.PerObjectTTL = c.Core.Tau
	}
	if c.PerObjectRenewInterval == 0 {
		c.PerObjectRenewInterval = c.PerObjectTTL / 2
	}
	if c.AttrTTL == 0 {
		c.AttrTTL = 3 * time.Second
	}
	return c
}

type handleInfo struct {
	ino   msg.ObjectID
	write bool
}

type sanPending struct {
	cb    func(reply msg.Message, errno msg.Errno)
	timer sim.Timer
	// tries counts retransmissions. buf (set for flush writes whose
	// payload lives in a pooled buffer) is recycled on acknowledgment
	// ONLY when tries is still zero: once a retransmission exists, a
	// duplicate delivery may sit in a disk's deferred service queue — or
	// a second writev may be in flight — still aliasing the buffer, so
	// the pool never gets it back (the garbage collector does). A plain
	// slice rather than a release closure: flushing allocates nothing
	// per page beyond the message itself.
	tries int
	buf   []byte
}

// Client is one file-system client node.
type Client struct {
	id     msg.NodeID
	cfg    Config
	clock  sim.Clock
	ctrl   Sender
	san    Sender
	server msg.NodeID
	oracle checker.Oracle

	chn   *core.Channel
	lease *core.LeaseClient // non-nil only for LeaseStorageTank
	cache *cache.Cache

	registered bool
	quiesced   bool
	recovering bool
	crashedFlg bool
	// reassertTried limits lock reassertion (§6 server recovery) to one
	// attempt per lease episode.
	reassertTried bool

	handles    map[msg.Handle]handleInfo
	sanCalls   map[msg.ReqID]*sanPending
	nextSANReq msg.ReqID
	inflight   int
	// lockedInos tracks the data locks this client believes it holds.
	lockedInos map[msg.ObjectID]msg.LockMode
	// ioCount/ioWaiters reference-count in-flight data operations per
	// object: lock downgrades (demand compliance, V-lease purges) wait
	// until operations started under the lock drain, so an in-flight read
	// can never complete into a revoked cache.
	ioCount   map[msg.ObjectID]int
	ioWaiters map[msg.ObjectID][]func()
	// demandBusy/demandNext serialize demand compliance per object: a
	// second demand arriving while one is being complied with (flush in
	// flight) is deferred — and coalesced to the strongest target — so
	// a weaker compliance can never finish after, and undo, a stronger
	// one.
	demandBusy map[msg.ObjectID]bool
	demandNext map[msg.ObjectID]*msg.Demand
	// demandSeq counts demands processed per object. A lock grant that
	// was in flight while a demand arrived may already have been revoked
	// (the client, not knowing, reported the demand "complied"); such
	// grants are discarded and re-acquired. See ensureLock.
	demandSeq map[msg.ObjectID]uint64
	// downgrading counts in-flight LockDowngraded/LockRelease exchanges
	// per object. New acquires for the object wait until these are
	// acknowledged: over a datagram network an acquire could otherwise
	// overtake the downgrade and be answered from pre-downgrade state.
	downgrading     map[msg.ObjectID]int
	acquireDeferred map[msg.ObjectID][]func()
	// seqNext/seqRun detect sequential scans per object (seqNext is the
	// block index that would extend the run, seqRun its current length);
	// prefetchInflight tracks block indexes a read-ahead batch is
	// already fetching, so overlapping windows are not re-requested.
	seqNext          map[msg.ObjectID]uint64
	seqRun           map[msg.ObjectID]int
	prefetchInflight map[msg.ObjectID]map[uint64]bool
	// pfEnd is the exclusive end of issued read-ahead coverage per
	// object: a new window is issued only when the scan reaches it.
	pfEnd map[msg.ObjectID]uint64
	// pfWaiters parks demand reads for blocks an in-flight read-ahead
	// batch already covers: the read completes off the batch instead of
	// duplicating the SAN round trip.
	pfWaiters map[msg.ObjectID]map[uint64][]DataCallback

	// Heartbeat baseline.
	hbLastAck sim.Time
	hbTimer   sim.Timer
	hbExpire  sim.Timer
	hbWarn    sim.Timer
	hbHave    bool
	// hbSuspect: the heartbeat lease is close to lapsing with no recent
	// ACKs; the client has stopped new operations and flushed dirty data
	// (our stand-in for Frangipani's write-ahead-log recovery).
	hbSuspect bool

	// Per-object (V) baseline.
	objExpiry map[msg.ObjectID]sim.Time
	vRenew    sim.Timer
	vSweep    sim.Timer

	// NFS baseline attribute cache.
	attrFetched map[msg.ObjectID]sim.Time

	flushTimer sim.Timer

	// OnPhase, if set, observes lease phase transitions (F4 traces).
	OnPhase func(from, to core.Phase)
	// OnRecovered, if set, fires when a rejoin completes.
	OnRecovered func(epoch msg.Epoch)

	reg       *stats.Registry
	tracer    *trace.Tracer
	opsOK     *stats.Counter
	opsFailed *stats.Counter
	reads     *stats.Counter
	writes    *stats.Counter
	staleEps  *stats.Counter // ops refused because isolated/unregistered
	recovers  *stats.Counter
	lostDirty *stats.Counter
	fencedIO  *stats.Counter
	nfsPolls  *stats.Counter
	// prefetchBatches counts read-ahead batches issued to the SAN (each
	// one vectored read covering up to Prefetch blocks).
	prefetchBatches *stats.Counter
}

// New creates a client talking to server. reg, oracle, and tr may be
// nil; tr receives the client's lease-lifecycle events.
func New(id, server msg.NodeID, cfg Config, clock sim.Clock, ctrl, san Sender,
	oracle checker.Oracle, reg *stats.Registry, tr *trace.Tracer) *Client {
	cfg = cfg.withDefaults()
	if err := cfg.Core.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Policy.Validate(); err != nil {
		panic(err)
	}
	if reg == nil {
		reg = stats.NewRegistry()
	}
	if oracle == nil {
		oracle = checker.Nop{}
	}
	prefix := fmt.Sprintf("client.%v.", id)
	c := &Client{
		id:               id,
		cfg:              cfg,
		clock:            clock,
		ctrl:             ctrl,
		san:              san,
		server:           server,
		oracle:           oracle,
		cache:            cache.NewWithLimits(reg, prefix, cfg.CacheMaxPages, cfg.CacheQuota),
		handles:          make(map[msg.Handle]handleInfo),
		sanCalls:         make(map[msg.ReqID]*sanPending),
		lockedInos:       make(map[msg.ObjectID]msg.LockMode),
		ioCount:          make(map[msg.ObjectID]int),
		ioWaiters:        make(map[msg.ObjectID][]func()),
		demandSeq:        make(map[msg.ObjectID]uint64),
		demandBusy:       make(map[msg.ObjectID]bool),
		demandNext:       make(map[msg.ObjectID]*msg.Demand),
		downgrading:      make(map[msg.ObjectID]int),
		acquireDeferred:  make(map[msg.ObjectID][]func()),
		seqNext:          make(map[msg.ObjectID]uint64),
		seqRun:           make(map[msg.ObjectID]int),
		prefetchInflight: make(map[msg.ObjectID]map[uint64]bool),
		pfEnd:            make(map[msg.ObjectID]uint64),
		pfWaiters:        make(map[msg.ObjectID]map[uint64][]DataCallback),
		objExpiry:        make(map[msg.ObjectID]sim.Time),
		attrFetched:      make(map[msg.ObjectID]sim.Time),
		reg:              reg,
		opsOK:            reg.Counter(prefix + "ops_ok"),
		opsFailed:        reg.Counter(prefix + "ops_failed"),
		reads:            reg.Counter(prefix + "reads"),
		writes:           reg.Counter(prefix + "writes"),
		staleEps:         reg.Counter(prefix + "ops_refused"),
		recovers:         reg.Counter(prefix + "recoveries"),
		lostDirty:        reg.Counter(prefix + "dirty_discarded"),
		fencedIO:         reg.Counter(prefix + "fenced_io"),
		nfsPolls:         reg.Counter(prefix + "nfs_polls"),
		prefetchBatches:  reg.Counter(prefix + "prefetch_batches"),
	}
	c.nextSANReq = cfg.SANReqBase
	c.tracer = tr
	env := core.Env{
		Reg:    reg,
		Prefix: prefix,
		Tracer: tr,
		Node:   id,
		Peer:   server,
		// The channel is created below; by the time any event fires it
		// exists, so the closure can read the live epoch.
		Epoch: func() msg.Epoch {
			if c.chn == nil {
				return 0
			}
			return c.chn.Epoch()
		},
	}
	if cfg.Policy.Lease == baselines.LeaseStorageTank {
		c.lease = core.NewLeaseClient(cfg.Core, clock, leaseActions{c}, env)
	}
	c.chn = core.NewChannel(id, server, cfg.Core, clock, c.sendCtrl, c.lease, env)
	if len(cfg.Replicas) > 0 {
		c.chn.SetTargets(cfg.Replicas)
	}
	return c
}

// emit stamps ev with the client's identity, epoch, and clock reading and
// hands it to the tracer, if any.
func (c *Client) emit(ev trace.Event) {
	if !c.tracer.Enabled() {
		return
	}
	ev.Node = c.id
	ev.Time = c.clock.Now()
	if ev.Epoch == 0 && c.chn != nil {
		ev.Epoch = c.chn.Epoch()
	}
	if ev.Peer == 0 {
		ev.Peer = c.server
	}
	c.tracer.Emit(ev)
}

func (c *Client) sendCtrl(to msg.NodeID, m msg.Message) {
	if c.crashedFlg {
		return
	}
	c.ctrl(to, m)
}

// ID returns the client's node ID.
func (c *Client) ID() msg.NodeID { return c.id }

// Cache exposes the cache for tests and experiments.
func (c *Client) Cache() *cache.Cache { return c.cache }

// Lease exposes the lease machine (nil for baseline policies).
func (c *Client) Lease() *core.LeaseClient { return c.lease }

// Epoch returns the current registration epoch (0 = not registered).
func (c *Client) Epoch() msg.Epoch { return c.chn.Epoch() }

// Registered reports whether the client currently holds an epoch.
func (c *Client) Registered() bool { return c.registered }

// Quiesced reports whether the client has stopped accepting new requests.
func (c *Client) Quiesced() bool { return c.quiesced }

// Inflight returns the number of in-progress file-system operations.
func (c *Client) Inflight() int { return c.inflight }

// Start registers with the server. Call once after the networks are up.
func (c *Client) Start() { c.rejoin() }

// Crash simulates a machine failure: all volatile state is gone and the
// client stops responding. The owner should also Crash the node on both
// networks. Restart by creating a new Client.
func (c *Client) Crash() {
	c.crashedFlg = true
	c.chn.CancelAll()
	c.cancelSAN()
	c.stopBaselineTimers()
	if c.lease != nil {
		c.lease.Reset()
	}
	for ino := range c.allCachedObjects() {
		c.oracle.LockInactive(c.id, ino)
	}
	c.cache.InvalidateAll()
	c.oracle.ClientCrashed(c.id)
}

// Deliver is the client's control-network handler.
func (c *Client) Deliver(env msg.Envelope) {
	if c.crashedFlg {
		return
	}
	switch m := env.Payload.(type) {
	case *msg.Reply:
		c.chn.HandleReply(m)
	case *msg.Demand:
		c.handleDemand(m)
	}
}

// DeliverSAN is the client's SAN handler.
func (c *Client) DeliverSAN(env msg.Envelope) {
	if c.crashedFlg {
		return
	}
	switch m := env.Payload.(type) {
	case *msg.DiskReadRes:
		c.completeSAN(m.Req, m, m.Err)
	case *msg.DiskWriteRes:
		c.completeSAN(m.Req, m, m.Err)
	case *msg.DiskWriteVRes:
		c.completeSAN(m.Req, m, m.Err)
	case *msg.DiskReadVRes:
		c.completeSAN(m.Req, m, m.Err)
	case *msg.DLockRes:
		c.completeSAN(m.Req, m, m.Err)
	}
}

// admitted reports whether a new file-system request may be serviced
// under the active policy's safety contract.
func (c *Client) admitted() bool {
	if c.crashedFlg || !c.registered || c.quiesced {
		return false
	}
	switch c.cfg.Policy.Lease {
	case baselines.LeaseStorageTank:
		return c.lease.Valid()
	case baselines.LeaseHeartbeat:
		return c.hbValid() && !c.hbSuspect
	default:
		return true
	}
}

// call wraps Channel.Call with the NACK hooks: for leaseless policies a
// NACK means our locks are gone and the cache must be discarded; for the
// paper's policy a NACK while our lease is still running may mean the
// server restarted and lost its volatile state — worth one reassertion
// attempt (§6) before completing the ordinary lease recovery.
func (c *Client) call(req msg.Request, cb core.ReplyCallback) {
	c.chn.Call(req, func(r *msg.Reply) {
		if r != nil && r.Status == msg.NACK {
			if c.lease == nil {
				c.recoverLeaseless()
			} else {
				c.maybeReassert()
			}
		}
		if cb != nil {
			cb(r)
		}
	})
}

// --- SAN I/O ---------------------------------------------------------------

func (c *Client) sanCall(d msg.NodeID, build func(req msg.ReqID) msg.Message,
	cb func(reply msg.Message, errno msg.Errno)) {
	c.sanCallBuf(d, build, nil, cb)
}

// sanCallBuf is sanCall for requests whose payload lives in a pooled
// buffer: buf (if non-nil) is returned to the pool when the call is
// acknowledged without ever having been retransmitted. See sanPending.
//
//tank:owns buf
func (c *Client) sanCallBuf(d msg.NodeID, build func(req msg.ReqID) msg.Message,
	buf []byte, cb func(reply msg.Message, errno msg.Errno)) {
	c.nextSANReq++
	id := c.nextSANReq
	p := &sanPending{cb: cb, buf: buf} //tank:adopt(returned on un-retransmitted ack; see completeSAN)
	c.sanCalls[id] = p
	var transmit func()
	transmit = func() {
		if c.crashedFlg {
			return
		}
		c.san(d, build(id))
		p.timer = c.clock.AfterFunc(c.cfg.Core.RetryInterval, func() {
			if c.sanCalls[id] != p {
				return
			}
			p.tries++
			transmit()
		})
	}
	transmit()
}

func (c *Client) completeSAN(req msg.ReqID, reply msg.Message, errno msg.Errno) {
	p, ok := c.sanCalls[req]
	if !ok {
		return
	}
	delete(c.sanCalls, req)
	if p.timer != nil {
		p.timer.Stop()
	}
	if errno == msg.ErrFenced {
		c.fencedIO.Inc()
		// Discovering the fence is how a fenced client learns anything at
		// all (§2.1). Leaseless clients recover; the paper's clients
		// normally never hit this (their lease expired first) except as
		// the slow-computer backstop (T6).
		if c.lease == nil {
			defer c.recoverLeaseless()
		}
	}
	if p.cb != nil {
		p.cb(reply, errno)
	}
	if p.buf != nil && p.tries == 0 {
		bufpool.Put(p.buf)
	}
}

func (c *Client) cancelSAN() {
	// Cancellation never runs release hooks: a cancelled request's send
	// (or a duplicate in a disk's service queue) may still alias the
	// payload buffer, so recycling it here could corrupt an in-flight
	// write. The buffers are simply garbage.
	for id, p := range c.sanCalls {
		delete(c.sanCalls, id)
		if p.timer != nil {
			p.timer.Stop()
		}
		if p.cb != nil {
			p.cb(nil, msg.ErrStale)
		}
	}
}

// ioBegin marks a data operation in flight under ino's lock.
func (c *Client) ioBegin(ino msg.ObjectID) { c.ioCount[ino]++ }

// ioEnd completes a data operation, releasing any deferred downgrades.
func (c *Client) ioEnd(ino msg.ObjectID) {
	c.ioCount[ino]--
	if c.ioCount[ino] > 0 {
		return
	}
	delete(c.ioCount, ino)
	waiters := c.ioWaiters[ino]
	delete(c.ioWaiters, ino)
	for _, w := range waiters {
		w()
	}
}

// whenIdle runs fn once no data operation is in flight on ino.
func (c *Client) whenIdle(ino msg.ObjectID, fn func()) {
	if c.ioCount[ino] == 0 {
		fn()
		return
	}
	c.ioWaiters[ino] = append(c.ioWaiters[ino], fn)
}

// downgradeBegin marks a downgrade/release exchange in flight for ino.
func (c *Client) downgradeBegin(ino msg.ObjectID) { c.downgrading[ino]++ }

// downgradeEnd completes the exchange and releases deferred acquires.
func (c *Client) downgradeEnd(ino msg.ObjectID) {
	c.downgrading[ino]--
	if c.downgrading[ino] > 0 {
		return
	}
	delete(c.downgrading, ino)
	deferred := c.acquireDeferred[ino]
	delete(c.acquireDeferred, ino)
	for _, fn := range deferred {
		fn()
	}
}

// afterDowngrades runs fn once no downgrade exchange is in flight on ino.
func (c *Client) afterDowngrades(ino msg.ObjectID, fn func()) {
	if c.downgrading[ino] == 0 {
		fn()
		return
	}
	c.acquireDeferred[ino] = append(c.acquireDeferred[ino], fn)
}

// allCachedObjects returns the set of inos with cache entries.
func (c *Client) allCachedObjects() map[msg.ObjectID]bool {
	out := make(map[msg.ObjectID]bool)
	for _, h := range c.handles {
		out[h.ino] = true
	}
	for _, ino := range c.cache.DirtyObjects() {
		out[ino] = true
	}
	for ino := range c.objExpiry {
		out[ino] = true
	}
	for ino := range c.lockedInos {
		out[ino] = true
	}
	return out
}
