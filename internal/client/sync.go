package client

import "repro/internal/msg"

// Await pumps the client's event loop until the operation started by
// start signals completion by invoking done, returning false if the
// operation never completed (drained scheduler, timeout). Each runtime
// supplies its own pump: the simulated cluster advances the scheduler;
// a live node submits to its executor and blocks the calling goroutine.
type Await func(start func(done func())) bool

// SyncClient adapts the callback-based Client to plain blocking calls
// returning error — the surface examples, tools, and populate-style test
// setup actually want. Every method drives exactly the event-driven code
// path the simulator exercises; the wrapper adds no protocol behaviour,
// only the pump.
type SyncClient struct {
	c     *Client
	await Await
}

// NewSync wraps c with the runtime's pump.
func NewSync(c *Client, await Await) *SyncClient {
	return &SyncClient{c: c, await: await}
}

// Client returns the wrapped event-driven client.
func (s *SyncClient) Client() *Client { return s.c }

// Open opens (optionally creating) a path for reading or writing.
func (s *SyncClient) Open(path string, write, create bool) (msg.Handle, msg.Attr, error) {
	var h msg.Handle
	var attr msg.Attr
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Open(path, write, create, func(gh msg.Handle, a msg.Attr, e msg.Errno) {
			h, attr, errno = gh, a, e
			done()
		})
	})
	if !ok {
		return h, attr, msg.ErrStale
	}
	return h, attr, errno.Or()
}

// Create makes a file or directory.
func (s *SyncClient) Create(path string, isDir bool) (msg.Attr, error) {
	var attr msg.Attr
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Create(path, isDir, func(a msg.Attr, e msg.Errno) {
			attr, errno = a, e
			done()
		})
	})
	if !ok {
		return attr, msg.ErrStale
	}
	return attr, errno.Or()
}

// Lookup resolves a path.
func (s *SyncClient) Lookup(path string) (msg.Attr, error) {
	var attr msg.Attr
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Lookup(path, func(a msg.Attr, e msg.Errno) {
			attr, errno = a, e
			done()
		})
	})
	if !ok {
		return attr, msg.ErrStale
	}
	return attr, errno.Or()
}

// Stat fetches an object's attributes.
func (s *SyncClient) Stat(ino msg.ObjectID) (msg.Attr, error) {
	var attr msg.Attr
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Stat(ino, func(a msg.Attr, e msg.Errno) {
			attr, errno = a, e
			done()
		})
	})
	if !ok {
		return attr, msg.ErrStale
	}
	return attr, errno.Or()
}

// Readdir lists a directory.
func (s *SyncClient) Readdir(ino msg.ObjectID) ([]msg.DirEntry, error) {
	var entries []msg.DirEntry
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Readdir(ino, func(es []msg.DirEntry, e msg.Errno) {
			entries, errno = es, e
			done()
		})
	})
	if !ok {
		return nil, msg.ErrStale
	}
	return entries, errno.Or()
}

// errnoOp drives one ErrnoCallback-shaped operation.
func (s *SyncClient) errnoOp(start func(cb ErrnoCallback)) error {
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		start(func(e msg.Errno) {
			errno = e
			done()
		})
	})
	if !ok {
		return msg.ErrStale
	}
	return errno.Or()
}

// ReadAt reads block idx of an open handle.
func (s *SyncClient) ReadAt(h msg.Handle, idx uint64) ([]byte, error) {
	var data []byte
	errno := msg.ErrStale
	ok := s.await(func(done func()) {
		s.c.Read(h, idx, func(d []byte, e msg.Errno) {
			data, errno = d, e
			done()
		})
	})
	if !ok {
		return nil, msg.ErrStale
	}
	return data, errno.Or()
}

// WriteAt writes block idx of an open handle (into the write-back cache;
// SyncAll makes it durable).
func (s *SyncClient) WriteAt(h msg.Handle, idx uint64, data []byte) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Write(h, idx, data, cb) })
}

// SyncAll flushes every dirty page to the SAN and returns once the last
// write is acknowledged — with vectored write-back, typically a handful
// of batched messages rather than one per page.
func (s *SyncClient) SyncAll() error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Sync(cb) })
}

// Close closes an open handle.
func (s *SyncClient) Close(h msg.Handle) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Close(h, cb) })
}

// Unlink removes a path.
func (s *SyncClient) Unlink(path string) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Unlink(path, cb) })
}

// Rename moves an object.
func (s *SyncClient) Rename(oldPath, newPath string) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Rename(oldPath, newPath, cb) })
}

// Truncate resizes an open file to nBlocks blocks.
func (s *SyncClient) Truncate(h msg.Handle, nBlocks uint32) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.Truncate(h, nBlocks, cb) })
}

// ReleaseLock gives up the client's data lock on ino.
func (s *SyncClient) ReleaseLock(ino msg.ObjectID) error {
	return s.errnoOp(func(cb ErrnoCallback) { s.c.ReleaseLock(ino, cb) })
}
