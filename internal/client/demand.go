package client

import (
	"repro/internal/bufpool"
	"repro/internal/msg"
	"repro/internal/trace"
)

// handleDemand answers a server-initiated lock demand (§1.2): the client
// immediately acknowledges receipt at the transport level (proving it is
// alive), then complies — flushing dirty data covered by the lock and
// downgrading its cache — and finally reports completion with a
// LockDowngraded request.
//
// Compliance is serialized per object: a demand arriving while an
// earlier one is mid-compliance (its flush still in flight) is deferred,
// coalesced to the strongest outstanding target. Without this, an
// escalated →None compliance could finish before a slower →Shared one,
// whose completion would then resurrect the lock and cache the client
// had just given up.
func (c *Client) handleDemand(m *msg.Demand) {
	c.emit(trace.Event{Type: trace.EvDemandRecv, Peer: m.Server, Ino: m.Ino,
		To: m.Mode.String()})
	// The transport-level ack goes out unconditionally and immediately;
	// its absence is what the server interprets as a delivery failure.
	c.sendCtrl(m.Server, &msg.DemandAck{Client: c.id, ID: m.ID})
	// Invalidate any lock grant currently in flight for this object: the
	// server sent this demand with knowledge of every grant it has made,
	// so a grant the client has not yet seen is covered by (and consumed
	// by) this demand.
	c.demandSeq[m.Ino]++

	if c.demandBusy[m.Ino] {
		if cur, ok := c.demandNext[m.Ino]; !ok || m.Mode < cur.Mode ||
			(m.Mode == cur.Mode && m.ID > cur.ID) {
			c.demandNext[m.Ino] = m
		}
		return
	}
	c.demandBusy[m.Ino] = true
	c.runDemand(m)
}

// runDemand executes one demand while holding the object's compliance
// slot.
func (c *Client) runDemand(m *msg.Demand) {
	held, ok := c.lockedInos[m.Ino]
	if !ok || held <= m.Mode {
		// Nothing to downgrade (already compliant, or a stale demand from
		// before an expiry). Still report, so the server's lock table
		// resolves its demand state.
		c.downgradeBegin(m.Ino)
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
		return
	}
	c.whenIdle(m.Ino, func() { c.complyDemand(m) })
}

// finishDemand releases the object's compliance slot and starts any
// deferred (strongest-coalesced) demand.
func (c *Client) finishDemand(ino msg.ObjectID) {
	if next, ok := c.demandNext[ino]; ok {
		delete(c.demandNext, ino)
		c.runDemand(next)
		return
	}
	delete(c.demandBusy, ino)
}

// complyDemand performs the flush + downgrade once in-flight operations
// under the lock have drained. The whole revocation — flush, cache
// adjustment, downgrade report — runs with the object's downgrade latch
// held, so no new operation can slip a fresh dirty page in between the
// flush and the downgrade.
func (c *Client) complyDemand(m *msg.Demand) {
	// Re-check: the world may have moved while this compliance waited for
	// in-flight operations to drain — in particular the lease may have
	// expired (clearing every lock) or a previous compliance may already
	// have downgraded far enough. Proceeding would resurrect a lock the
	// client no longer holds.
	if held, ok := c.lockedInos[m.Ino]; !ok || held <= m.Mode {
		c.downgradeBegin(m.Ino)
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
		return
	}
	c.downgradeBegin(m.Ino)
	c.emit(trace.Event{Type: trace.EvFlushStart, Ino: m.Ino, Note: "demand"})
	c.flushObject(m.Ino, func() {
		c.emit(trace.Event{Type: trace.EvFlushDone, Ino: m.Ino, Note: "demand"})
		if m.Mode == msg.LockNone {
			delete(c.lockedInos, m.Ino)
			c.oracle.LockInactive(c.id, m.Ino)
			c.cache.Drop(m.Ino)
			delete(c.objExpiry, m.Ino)
		} else {
			c.lockedInos[m.Ino] = m.Mode
			if o := c.cache.Object(m.Ino); o != nil {
				o.Mode = m.Mode
			}
			c.oracle.LockActive(c.id, m.Ino, m.Mode)
		}
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
	})
}

// flushItem is one dirty page snapshotted for write-back: where it goes
// on the SAN and the version it carried when the flush began.
type flushItem struct {
	ino  msg.ObjectID
	idx  uint64
	disk msg.NodeID
	num  uint64
	ver  uint64
	data []byte
}

// collectDirty snapshots ino's dirty pages as flush items. Pages without
// a block mapping (allocation lost) are skipped; nothing safe to do.
func (c *Client) collectDirty(ino msg.ObjectID) []flushItem {
	dirty := c.cache.DirtyPages(ino)
	o := c.cache.Object(ino)
	if len(dirty) == 0 || o == nil || !o.HaveMap {
		return nil
	}
	items := make([]flushItem, 0, len(dirty))
	for _, idx := range dirty {
		if idx >= uint64(len(o.Blocks)) {
			continue
		}
		p := o.Page(idx)
		if p == nil || !p.Dirty {
			continue
		}
		ref := o.Blocks[idx]
		// data ALIASES the live cache page. flushItems copies it into the
		// outgoing payload buffer in this same executor turn, before any
		// operation can re-dirty the page in place.
		items = append(items, flushItem{
			ino: ino, idx: idx, disk: ref.Disk, num: ref.Num,
			ver: p.Ver, data: p.Data,
		})
	}
	return items
}

// flushBatchLimit returns the coalescing bound: how many dirty pages one
// SAN message may carry. FlushBatch=0 selects the default; 1 disables
// vectoring (the legacy per-page write path).
func (c *Client) flushBatchLimit() int {
	if c.cfg.FlushBatch == 0 {
		return DefaultFlushBatch
	}
	if c.cfg.FlushBatch < 1 {
		return 1
	}
	return c.cfg.FlushBatch
}

// flushCommitted handles one page's write acknowledgment: mark it clean
// (only if it was not re-dirtied with a newer version while the write was
// in flight) and tell the oracle the version reached stable storage.
func (c *Client) flushCommitted(it flushItem) {
	if cur := c.cache.Object(it.ino); cur != nil {
		if pg := cur.Page(it.idx); pg != nil && pg.Ver == it.ver {
			c.cache.MarkClean(it.ino, it.idx)
		}
	}
	c.oracle.Committed(c.id, it.ino, it.idx, it.ver)
}

// flushItems writes the items back, coalescing per target disk into
// vectored batches of at most flushBatchLimit pages; done fires when the
// last batch is acknowledged. A single-page batch goes out as a scalar
// DiskWrite — identical to the pre-vectoring wire traffic — so flushes
// of one dirty page (the common case outside burst flushes) are
// unchanged. Per-block failures inside a batch leave those pages dirty
// for the next flush, exactly as a failed scalar write would.
func (c *Client) flushItems(items []flushItem, done func()) {
	if len(items) == 0 {
		if done != nil {
			done()
		}
		return
	}
	limit := c.flushBatchLimit()
	byDisk := make(map[msg.NodeID][]flushItem)
	var order []msg.NodeID
	for _, it := range items {
		if _, ok := byDisk[it.disk]; !ok {
			order = append(order, it.disk)
		}
		byDisk[it.disk] = append(byDisk[it.disk], it)
	}
	remaining := 0
	finish := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	for _, d := range order {
		queue := byDisk[d]
		for len(queue) > 0 {
			n := limit
			if n > len(queue) {
				n = len(queue)
			}
			chunk := queue[:n]
			queue = queue[n:]
			remaining++
			if len(chunk) == 1 {
				// Scalar write. The item's data aliases the live cache
				// page, which cache.Write may re-dirty in place while the
				// write is in flight — snapshot it into a pooled buffer,
				// returned on un-retransmitted acknowledgment.
				it := chunk[0]
				buf := bufpool.Get(len(it.data))
				copy(buf, it.data)
				c.sanCallBuf(d, func(req msg.ReqID) msg.Message {
					return &msg.DiskWrite{Client: c.id, Req: req, Block: it.num, Data: buf, Ver: it.ver}
				}, buf, func(reply msg.Message, errno msg.Errno) {
					if errno == msg.OK {
						c.flushCommitted(it)
					}
					finish()
				})
				continue
			}
			chunk = append([]flushItem(nil), chunk...)
			vecs := make([]msg.BlockVec, len(chunk))
			payload := bufpool.Get(len(chunk) * BlockSize)
			for i, it := range chunk {
				vecs[i] = msg.BlockVec{Block: it.num, Ver: it.ver}
				copy(payload[i*BlockSize:(i+1)*BlockSize], it.data)
			}
			c.sanCallBuf(d, func(req msg.ReqID) msg.Message {
				return &msg.DiskWriteV{Client: c.id, Req: req, Blocks: vecs, Data: payload}
			}, payload, func(reply msg.Message, errno msg.Errno) {
				res, _ := reply.(*msg.DiskWriteVRes)
				for i, it := range chunk {
					ok := errno == msg.OK
					if res != nil && i < len(res.Errs) {
						ok = res.Errs[i] == msg.OK
					}
					if ok {
						c.flushCommitted(it)
					}
				}
				finish()
			})
		}
	}
}

// flushObject writes every dirty page of ino to the SAN and calls done
// when the last write is acknowledged. done runs immediately when there
// is nothing dirty.
func (c *Client) flushObject(ino msg.ObjectID, done func()) {
	c.flushItems(c.collectDirty(ino), done)
}

// flushAll flushes every dirty object; done fires when all writes are
// acknowledged (or immediately when the cache is clean). Dirty pages of
// DIFFERENT objects that live on the same disk coalesce into the same
// batches — the scatter-gather message addresses blocks, not files.
func (c *Client) flushAll(done func()) {
	var items []flushItem
	for _, ino := range c.cache.DirtyObjects() {
		items = append(items, c.collectDirty(ino)...)
	}
	c.flushItems(items, done)
}
