package client

import (
	"repro/internal/msg"
	"repro/internal/trace"
)

// handleDemand answers a server-initiated lock demand (§1.2): the client
// immediately acknowledges receipt at the transport level (proving it is
// alive), then complies — flushing dirty data covered by the lock and
// downgrading its cache — and finally reports completion with a
// LockDowngraded request.
//
// Compliance is serialized per object: a demand arriving while an
// earlier one is mid-compliance (its flush still in flight) is deferred,
// coalesced to the strongest outstanding target. Without this, an
// escalated →None compliance could finish before a slower →Shared one,
// whose completion would then resurrect the lock and cache the client
// had just given up.
func (c *Client) handleDemand(m *msg.Demand) {
	c.emit(trace.Event{Type: trace.EvDemandRecv, Peer: m.Server, Ino: m.Ino,
		To: m.Mode.String()})
	// The transport-level ack goes out unconditionally and immediately;
	// its absence is what the server interprets as a delivery failure.
	c.sendCtrl(m.Server, &msg.DemandAck{Client: c.id, ID: m.ID})
	// Invalidate any lock grant currently in flight for this object: the
	// server sent this demand with knowledge of every grant it has made,
	// so a grant the client has not yet seen is covered by (and consumed
	// by) this demand.
	c.demandSeq[m.Ino]++

	if c.demandBusy[m.Ino] {
		if cur, ok := c.demandNext[m.Ino]; !ok || m.Mode < cur.Mode ||
			(m.Mode == cur.Mode && m.ID > cur.ID) {
			c.demandNext[m.Ino] = m
		}
		return
	}
	c.demandBusy[m.Ino] = true
	c.runDemand(m)
}

// runDemand executes one demand while holding the object's compliance
// slot.
func (c *Client) runDemand(m *msg.Demand) {
	held, ok := c.lockedInos[m.Ino]
	if !ok || held <= m.Mode {
		// Nothing to downgrade (already compliant, or a stale demand from
		// before an expiry). Still report, so the server's lock table
		// resolves its demand state.
		c.downgradeBegin(m.Ino)
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
		return
	}
	c.whenIdle(m.Ino, func() { c.complyDemand(m) })
}

// finishDemand releases the object's compliance slot and starts any
// deferred (strongest-coalesced) demand.
func (c *Client) finishDemand(ino msg.ObjectID) {
	if next, ok := c.demandNext[ino]; ok {
		delete(c.demandNext, ino)
		c.runDemand(next)
		return
	}
	delete(c.demandBusy, ino)
}

// complyDemand performs the flush + downgrade once in-flight operations
// under the lock have drained. The whole revocation — flush, cache
// adjustment, downgrade report — runs with the object's downgrade latch
// held, so no new operation can slip a fresh dirty page in between the
// flush and the downgrade.
func (c *Client) complyDemand(m *msg.Demand) {
	// Re-check: the world may have moved while this compliance waited for
	// in-flight operations to drain — in particular the lease may have
	// expired (clearing every lock) or a previous compliance may already
	// have downgraded far enough. Proceeding would resurrect a lock the
	// client no longer holds.
	if held, ok := c.lockedInos[m.Ino]; !ok || held <= m.Mode {
		c.downgradeBegin(m.Ino)
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
		return
	}
	c.downgradeBegin(m.Ino)
	c.emit(trace.Event{Type: trace.EvFlushStart, Ino: m.Ino, Note: "demand"})
	c.flushObject(m.Ino, func() {
		c.emit(trace.Event{Type: trace.EvFlushDone, Ino: m.Ino, Note: "demand"})
		if m.Mode == msg.LockNone {
			delete(c.lockedInos, m.Ino)
			c.oracle.LockInactive(c.id, m.Ino)
			c.cache.Drop(m.Ino)
			delete(c.objExpiry, m.Ino)
		} else {
			c.lockedInos[m.Ino] = m.Mode
			if o := c.cache.Object(m.Ino); o != nil {
				o.Mode = m.Mode
			}
			c.oracle.LockActive(c.id, m.Ino, m.Mode)
		}
		c.call(&msg.LockDowngraded{Ino: m.Ino, To: m.Mode, Demand: m.ID}, func(*msg.Reply) {
			c.downgradeEnd(m.Ino)
		})
		c.finishDemand(m.Ino)
	})
}

// flushObject writes every dirty page of ino to the SAN and calls done
// when the last write is acknowledged. done runs immediately when there
// is nothing dirty.
func (c *Client) flushObject(ino msg.ObjectID, done func()) {
	dirty := c.cache.DirtyPages(ino)
	o := c.cache.Object(ino)
	if len(dirty) == 0 || o == nil || !o.HaveMap {
		if done != nil {
			done()
		}
		return
	}
	remaining := 0
	var finish func()
	finish = func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	for _, idx := range dirty {
		if idx >= uint64(len(o.Blocks)) {
			continue // allocation lost; nothing safe to do
		}
		p := o.Page(idx)
		if p == nil || !p.Dirty {
			continue
		}
		remaining++
		idx := idx
		ref := o.Blocks[idx]
		ver := p.Ver
		data := append([]byte(nil), p.Data...)
		c.sanCall(ref.Disk, func(req msg.ReqID) msg.Message {
			return &msg.DiskWrite{Client: c.id, Req: req, Block: ref.Num, Data: data, Ver: ver}
		}, func(reply msg.Message, errno msg.Errno) {
			if errno == msg.OK {
				// Only mark clean if the page was not re-dirtied with a
				// newer version while the write was in flight.
				if cur := c.cache.Object(ino); cur != nil {
					if pg := cur.Page(idx); pg != nil && pg.Ver == ver {
						c.cache.MarkClean(ino, idx)
					}
				}
				c.oracle.Committed(c.id, ino, idx, ver)
			}
			finish()
		})
	}
	if remaining == 0 && done != nil {
		done()
	}
}

// flushAll flushes every dirty object; done fires when all writes are
// acknowledged (or immediately when the cache is clean).
func (c *Client) flushAll(done func()) {
	objs := c.cache.DirtyObjects()
	if len(objs) == 0 {
		if done != nil {
			done()
		}
		return
	}
	remaining := len(objs)
	for _, ino := range objs {
		c.flushObject(ino, func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}
