package faultnet_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/rpcnet"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// fabric abstracts the two network implementations just enough to run
// one shared fault plan against both.
type fabric interface {
	BlockDir(from, to msg.NodeID)
	Partition(side ...msg.NodeID)
	Isolate(id msg.NodeID)
	Heal()
	SetLossProb(p float64)
}

// plan executes the same scripted fault sequence against any fabric:
// five sends, the first four doomed for different structural reasons,
// the last delivered. send must transmit one message and give any
// injected drop time to reach the trace bus before returning.
func plan(f fabric, send func(from, to msg.NodeID)) {
	const a, b, c = msg.NodeID(21), msg.NodeID(22), msg.NodeID(23)
	f.BlockDir(a, b)
	send(a, b) // drop:blocked (directed block)
	f.Heal()
	f.Partition(a)
	send(a, c) // drop:blocked (partition boundary)
	f.Heal()
	f.Isolate(c)
	send(b, c) // drop:blocked (isolation)
	f.Heal()
	f.SetLossProb(1)
	send(a, b) // drop:loss (certain random loss)
	f.SetLossProb(0)
	send(a, b) // delivered
}

// dropNotes extracts the fault-induced transport-drop notes, in order.
func dropNotes(s trace.Stream) []string {
	var out []string
	for _, e := range s.Filter(trace.ByType(trace.EvTransport), trace.ByNotePrefix("drop:")) {
		out = append(out, e.Note)
	}
	return out
}

// TestSimLiveDropTaxonomyParity runs one fault plan against the
// discrete-event fabric and against real TCP transports and demands the
// identical drop-reason sequence in the traces — the property that makes
// a chaos scenario debugged on the simulator meaningful on live
// hardware, and vice versa.
func TestSimLiveDropTaxonomyParity(t *testing.T) {
	want := []string{"drop:blocked", "drop:blocked", "drop:blocked", "drop:loss"}
	ka := func(req msg.ReqID) msg.Message {
		return &msg.KeepAlive{ReqHeader: msg.ReqHeader{Client: 21, Req: req}}
	}

	// Simulated fabric: three attached nodes, deterministic delivery.
	simRing := trace.NewRing(64)
	sched := sim.NewScheduler(1)
	net := simnet.New(sched, simnet.Config{Name: "parity"})
	net.SetTracer(trace.New(simRing))
	simDelivered := 0
	for _, id := range []msg.NodeID{21, 22, 23} {
		net.Attach(id, func(msg.Envelope) { simDelivered++ })
	}
	var req msg.ReqID
	plan(net, func(from, to msg.NodeID) {
		req++
		net.Send(from, to, ka(req))
		sched.Run() // drain any delivery before the next plan step
	})
	if simDelivered != 1 {
		t.Fatalf("sim delivered %d messages, want exactly the final one", simDelivered)
	}

	// Live fabric: three TCP transports sharing one fault plan and one
	// trace bus. Drops are judged synchronously in Send, so the notes
	// land in plan order; only the final (delivered) send goes async.
	liveRing := trace.NewRing(64)
	liveTracer := trace.New(liveRing)
	faults := faultnet.New(1)
	liveDelivered := make(chan msg.NodeID, 8)
	newNode := func(id msg.NodeID, addrs map[msg.NodeID]string) *rpcnet.Transport {
		tr := rpcnet.New(id, addrs, func(msg.Envelope) { liveDelivered <- id })
		tr.SetTracer(liveTracer)
		tr.SetFaults(faults)
		go tr.Run()
		t.Cleanup(tr.Close)
		return tr
	}
	c := newNode(23, nil)
	cAddr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := newNode(22, map[msg.NodeID]string{23: cAddr.String()})
	bAddr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := newNode(21, map[msg.NodeID]string{22: bAddr.String(), 23: cAddr.String()})
	nodes := map[msg.NodeID]*rpcnet.Transport{21: a, 22: b, 23: c}

	req = 0
	plan(faults, func(from, to msg.NodeID) {
		req++
		nodes[from].Send(to, ka(req))
	})
	select {
	case at := <-liveDelivered:
		if at != 22 {
			t.Fatalf("final message delivered at node %v, want 22", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("final (unfaulted) live message never delivered")
	}

	simNotes, liveNotes := dropNotes(simRing.Events()), dropNotes(liveRing.Events())
	if !reflect.DeepEqual(simNotes, want) {
		t.Fatalf("sim drop taxonomy = %v, want %v", simNotes, want)
	}
	if !reflect.DeepEqual(liveNotes, want) {
		t.Fatalf("live drop taxonomy = %v, want %v", liveNotes, want)
	}
}
