// Package faultnet injects simulator-style failures into the live TCP
// transport. It gives internal/rpcnet the same failure vocabulary the
// discrete-event simulator (internal/simnet) speaks — directed link
// blocks, symmetric partitions, node isolation, per-link loss
// probability, and added latency/jitter — so every scenario written
// against the simulated network can be replayed against real sockets.
//
// A Faults value is a mutable fault plan shared by the transports it is
// installed on (rpcnet.Transport.SetFaults, or rpcnet.WithFaults at node
// construction). All mutators are safe for concurrent use and take
// effect for subsequently judged messages, matching simnet's "state at
// send time" semantics: a partition simply makes datagrams stop
// arriving, while established TCP connections stay open underneath.
//
// Drop outcomes reuse simnet.DropReason, so a fault plan executed on the
// simulator and on live TCP produces the same drop taxonomy in traces
// (rpcnet and simnet both emit trace.EvTransport events whose Note is
// DropReason.Note()).
//
// Judging is split by direction:
//
//   - JudgeSend runs on the sending transport and applies everything:
//     structural blocks, probabilistic loss, and latency.
//   - JudgeRecv runs on the receiving transport and applies structural
//     blocks only. Loss and latency are the sender's business, so a
//     plan shared by both endpoints (the in-process test harness)
//     applies them exactly once per message.
//
// When only one process of a multi-process installation carries the
// plan (cmd/tankd), JudgeRecv is what severs inbound traffic from
// un-instrumented peers; inbound loss cannot be simulated there — use a
// block instead.
package faultnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/simnet"
)

// Link sets the delivery characteristics of one directed link (or the
// default for all links).
type Link struct {
	// Loss is the probability an individual message is silently dropped.
	Loss float64
	// Delay is a fixed one-way latency added before the message is
	// written to the socket.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra latency in [0, Jitter).
	Jitter time.Duration
}

func (l Link) zero() bool { return l.Loss == 0 && l.Delay == 0 && l.Jitter == 0 }

// Verdict is the outcome of judging one message.
type Verdict struct {
	// Deliver reports whether the message proceeds.
	Deliver bool
	// Reason explains a drop (simnet.Delivered when Deliver is true).
	Reason simnet.DropReason
	// Delay is the injected latency to apply before transmission.
	Delay time.Duration
}

type edge struct{ from, to msg.NodeID }

// Faults is a mutable, concurrency-safe fault plan for a set of live
// transports. The zero value is not usable; call New.
type Faults struct {
	mu      sync.Mutex
	rng     *rand.Rand
	enabled bool

	blocked  map[edge]bool
	isolated map[msg.NodeID]bool
	// partitioned/side implement simnet.Partition without knowing the
	// node universe: when active, every edge crossing the side boundary
	// is blocked in both directions.
	partitioned bool
	side        map[msg.NodeID]bool

	links map[edge]Link
	def   Link

	drops map[simnet.DropReason]uint64
}

// New creates an empty (everything delivered), enabled fault plan. seed
// drives the loss/jitter randomness, so a chaos run is reproducible.
func New(seed int64) *Faults {
	return &Faults{
		rng:      rand.New(rand.NewSource(seed)),
		enabled:  true,
		blocked:  make(map[edge]bool),
		isolated: make(map[msg.NodeID]bool),
		side:     make(map[msg.NodeID]bool),
		links:    make(map[edge]Link),
		drops:    make(map[simnet.DropReason]uint64),
	}
}

// SetEnabled flips the master switch: a disabled plan judges every
// message deliverable with no delay, without losing its configuration.
func (f *Faults) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// Enabled reports the master switch.
func (f *Faults) Enabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enabled
}

// Toggle flips the master switch and returns the new state (the
// cmd/tankd SIGUSR2 handler).
func (f *Faults) Toggle() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.enabled = !f.enabled
	return f.enabled
}

// BlockDir blocks the directed link from → to (asymmetric partition),
// exactly like simnet.Network.BlockDir.
func (f *Faults) BlockDir(from, to msg.NodeID) {
	f.mu.Lock()
	f.blocked[edge{from, to}] = true
	f.mu.Unlock()
}

// UnblockDir re-opens the directed link.
func (f *Faults) UnblockDir(from, to msg.NodeID) {
	f.mu.Lock()
	delete(f.blocked, edge{from, to})
	f.mu.Unlock()
}

// Block severs both directions between a and b.
func (f *Faults) Block(a, b msg.NodeID) {
	f.mu.Lock()
	f.blocked[edge{a, b}] = true
	f.blocked[edge{b, a}] = true
	f.mu.Unlock()
}

// Unblock restores both directions between a and b.
func (f *Faults) Unblock(a, b msg.NodeID) {
	f.mu.Lock()
	delete(f.blocked, edge{a, b})
	delete(f.blocked, edge{b, a})
	f.mu.Unlock()
}

// Partition splits the world into the given side and everyone else:
// every message crossing the boundary, in either direction, is blocked.
// Unlike simnet (which enumerates attached nodes), membership is tested
// per message, so the plan needs no address book.
func (f *Faults) Partition(side ...msg.NodeID) {
	f.mu.Lock()
	f.partitioned = true
	f.side = make(map[msg.NodeID]bool, len(side))
	for _, id := range side {
		f.side[id] = true
	}
	f.mu.Unlock()
}

// Isolate blocks every link touching id, in both directions — the
// paper's "isolated, not failed" computer.
func (f *Faults) Isolate(id msg.NodeID) {
	f.mu.Lock()
	f.isolated[id] = true
	f.mu.Unlock()
}

// Heal removes every structural fault: directed blocks, the partition,
// and all isolations. Link loss/latency settings are kept (clear them
// with ClearLinks).
func (f *Faults) Heal() {
	f.mu.Lock()
	f.blocked = make(map[edge]bool)
	f.isolated = make(map[msg.NodeID]bool)
	f.partitioned = false
	f.side = make(map[msg.NodeID]bool)
	f.mu.Unlock()
}

// SetLink sets the loss/latency characteristics of the directed link
// from → to (overriding the default link).
func (f *Faults) SetLink(from, to msg.NodeID, l Link) {
	f.mu.Lock()
	if l.zero() {
		delete(f.links, edge{from, to})
	} else {
		f.links[edge{from, to}] = l
	}
	f.mu.Unlock()
}

// SetDefaultLink sets the characteristics of every link without an
// explicit override.
func (f *Faults) SetDefaultLink(l Link) {
	f.mu.Lock()
	f.def = l
	f.mu.Unlock()
}

// SetLossProb sets the default drop probability for all links — the
// same knob as simnet.Network.SetLossProb, for fault plans written
// against both fabrics.
func (f *Faults) SetLossProb(p float64) {
	f.mu.Lock()
	f.def.Loss = p
	f.mu.Unlock()
}

// ClearLinks removes all per-link overrides and the default link.
func (f *Faults) ClearLinks() {
	f.mu.Lock()
	f.links = make(map[edge]Link)
	f.def = Link{}
	f.mu.Unlock()
}

// Blocked reports whether the directed link from → to is structurally
// blocked (by a block, the partition, or isolation).
func (f *Faults) Blocked(from, to msg.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enabled && f.blockedLocked(from, to)
}

func (f *Faults) blockedLocked(from, to msg.NodeID) bool {
	switch {
	case f.isolated[from] || f.isolated[to]:
		return true
	case f.blocked[edge{from, to}]:
		return true
	case f.partitioned && f.side[from] != f.side[to]:
		return true
	}
	return false
}

// JudgeSend decides the fate of a message about to be transmitted from
// → to: structural blocks, then probabilistic loss, then latency. Drops
// are counted by reason.
func (f *Faults) JudgeSend(from, to msg.NodeID) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return Verdict{Deliver: true}
	}
	if f.blockedLocked(from, to) {
		f.drops[simnet.DropBlocked]++
		return Verdict{Reason: simnet.DropBlocked}
	}
	l, ok := f.links[edge{from, to}]
	if !ok {
		l = f.def
	}
	if l.Loss > 0 && f.rng.Float64() < l.Loss {
		f.drops[simnet.DropLoss]++
		return Verdict{Reason: simnet.DropLoss}
	}
	d := l.Delay
	if l.Jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(l.Jitter)))
	}
	return Verdict{Deliver: true, Delay: d}
}

// JudgeRecv decides the fate of a message arriving at to from from.
// Only structural blocks apply (see the package comment).
func (f *Faults) JudgeRecv(from, to msg.NodeID) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return Verdict{Deliver: true}
	}
	if f.blockedLocked(from, to) {
		f.drops[simnet.DropBlocked]++
		return Verdict{Reason: simnet.DropBlocked}
	}
	return Verdict{Deliver: true}
}

// DropCounts returns a copy of the per-reason drop totals.
func (f *Faults) DropCounts() map[simnet.DropReason]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[simnet.DropReason]uint64, len(f.drops))
	for r, n := range f.drops {
		out[r] = n
	}
	return out
}

// Summary renders the plan's current state for operator dumps (the
// cmd/tankd SIGUSR1 report).
func (f *Faults) Summary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "faults enabled=%v", f.enabled)
	if !f.def.zero() {
		fmt.Fprintf(&b, " default{loss=%g delay=%v jitter=%v}", f.def.Loss, f.def.Delay, f.def.Jitter)
	}
	if len(f.isolated) > 0 {
		ids := make([]msg.NodeID, 0, len(f.isolated))
		for id := range f.isolated {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(&b, " isolated=%v", ids)
	}
	if f.partitioned {
		ids := make([]msg.NodeID, 0, len(f.side))
		for id := range f.side {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(&b, " partition=%v", ids)
	}
	if len(f.blocked) > 0 {
		fmt.Fprintf(&b, " blocks=%d", len(f.blocked))
	}
	reasons := make([]simnet.DropReason, 0, len(f.drops))
	for r := range f.drops {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		fmt.Fprintf(&b, " drops[%s]=%d", r, f.drops[r])
	}
	return b.String()
}
