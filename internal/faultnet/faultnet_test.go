package faultnet

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/simnet"
)

const (
	nA = msg.NodeID(1)
	nB = msg.NodeID(2)
	nC = msg.NodeID(3)
)

func mustDeliver(t *testing.T, f *Faults, from, to msg.NodeID) {
	t.Helper()
	if v := f.JudgeSend(from, to); !v.Deliver {
		t.Fatalf("send %v→%v dropped (%v), want delivered", from, to, v.Reason)
	}
	if v := f.JudgeRecv(from, to); !v.Deliver {
		t.Fatalf("recv %v→%v dropped (%v), want delivered", from, to, v.Reason)
	}
}

func mustBlock(t *testing.T, f *Faults, from, to msg.NodeID) {
	t.Helper()
	if v := f.JudgeSend(from, to); v.Deliver || v.Reason != simnet.DropBlocked {
		t.Fatalf("send %v→%v = %+v, want blocked", from, to, v)
	}
	if v := f.JudgeRecv(from, to); v.Deliver || v.Reason != simnet.DropBlocked {
		t.Fatalf("recv %v→%v = %+v, want blocked", from, to, v)
	}
}

func TestEmptyPlanDeliversEverything(t *testing.T) {
	f := New(1)
	mustDeliver(t, f, nA, nB)
	mustDeliver(t, f, nB, nA)
	if n := len(f.DropCounts()); n != 0 {
		t.Fatalf("empty plan recorded %d drop reasons", n)
	}
}

func TestDirectedBlockIsAsymmetric(t *testing.T) {
	f := New(1)
	f.BlockDir(nA, nB)
	mustBlock(t, f, nA, nB)
	mustDeliver(t, f, nB, nA) // reverse direction stays open
	f.UnblockDir(nA, nB)
	mustDeliver(t, f, nA, nB)
}

func TestBlockSeversBothDirections(t *testing.T) {
	f := New(1)
	f.Block(nA, nB)
	mustBlock(t, f, nA, nB)
	mustBlock(t, f, nB, nA)
	mustDeliver(t, f, nA, nC)
	f.Unblock(nA, nB)
	mustDeliver(t, f, nA, nB)
}

func TestPartitionBlocksOnlyCrossings(t *testing.T) {
	f := New(1)
	f.Partition(nA, nB)
	mustDeliver(t, f, nA, nB) // same side
	mustBlock(t, f, nA, nC)   // crossing
	mustBlock(t, f, nC, nB)   // crossing, other direction
}

func TestIsolationCutsAllLinks(t *testing.T) {
	f := New(1)
	f.Isolate(nB)
	mustBlock(t, f, nA, nB)
	mustBlock(t, f, nB, nC)
	mustDeliver(t, f, nA, nC)
}

func TestHealClearsStructureKeepsLinks(t *testing.T) {
	f := New(1)
	f.BlockDir(nA, nB)
	f.Partition(nA)
	f.Isolate(nC)
	f.SetLossProb(1)
	f.Heal()
	if f.Blocked(nA, nB) || f.Blocked(nA, nC) || f.Blocked(nB, nC) {
		t.Fatal("structural faults survived Heal")
	}
	// Loss configuration is deliberately kept across Heal.
	if v := f.JudgeSend(nA, nB); v.Deliver || v.Reason != simnet.DropLoss {
		t.Fatalf("post-heal send = %+v, want loss", v)
	}
	f.ClearLinks()
	mustDeliver(t, f, nA, nB)
}

func TestDisabledPlanDeliversAndRemembers(t *testing.T) {
	f := New(1)
	f.Isolate(nA)
	f.SetEnabled(false)
	mustDeliver(t, f, nA, nB)
	if on := f.Toggle(); !on {
		t.Fatal("Toggle after disable should re-enable")
	}
	mustBlock(t, f, nA, nB) // configuration survived the off period
}

func TestLinkLatencyAndJitter(t *testing.T) {
	f := New(1)
	f.SetLink(nA, nB, Link{Delay: 40 * time.Millisecond, Jitter: 10 * time.Millisecond})
	for i := 0; i < 32; i++ {
		v := f.JudgeSend(nA, nB)
		if !v.Deliver {
			t.Fatalf("latency-only link dropped: %+v", v)
		}
		if v.Delay < 40*time.Millisecond || v.Delay >= 50*time.Millisecond {
			t.Fatalf("delay %v outside [40ms, 50ms)", v.Delay)
		}
	}
	// Other links keep the (zero) default.
	if v := f.JudgeSend(nB, nA); v.Delay != 0 {
		t.Fatalf("reverse link has delay %v, want 0", v.Delay)
	}
}

func TestDropCountsByReason(t *testing.T) {
	f := New(1)
	f.BlockDir(nA, nB)
	f.JudgeSend(nA, nB)
	f.JudgeSend(nA, nB)
	f.UnblockDir(nA, nB)
	f.SetLossProb(1)
	f.JudgeSend(nA, nB)
	got := f.DropCounts()
	if got[simnet.DropBlocked] != 2 || got[simnet.DropLoss] != 1 {
		t.Fatalf("drop counts = %v, want blocked:2 loss:1", got)
	}
}

func TestJudgeRecvSkipsLossAndLatency(t *testing.T) {
	// A plan shared by both endpoints must apply loss and latency exactly
	// once per message — on the sender. The receiver only enforces
	// structure.
	f := New(1)
	f.SetDefaultLink(Link{Loss: 1, Delay: time.Second})
	if v := f.JudgeRecv(nA, nB); !v.Deliver || v.Delay != 0 {
		t.Fatalf("JudgeRecv applied sender-side faults: %+v", v)
	}
}
