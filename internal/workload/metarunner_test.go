package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

// fakeMeta completes every op after a fixed service delay and records
// the paths touched.
type fakeMeta struct {
	sched   *sim.Scheduler
	delay   time.Duration
	fail    bool
	creates []string
	lookups []string
}

func (f *fakeMeta) Lookup(path string, cb func(msg.Attr, msg.Errno)) {
	f.lookups = append(f.lookups, path)
	f.complete(cb)
}

func (f *fakeMeta) Create(path string, _ bool, cb func(msg.Attr, msg.Errno)) {
	f.creates = append(f.creates, path)
	f.complete(cb)
}

func (f *fakeMeta) complete(cb func(msg.Attr, msg.Errno)) {
	errno := msg.OK
	if f.fail {
		errno = msg.ErrStale
	}
	if f.delay == 0 {
		cb(msg.Attr{}, errno)
		return
	}
	f.sched.After(f.delay, func() { cb(msg.Attr{}, errno) })
}

func TestMetaRunnerClosedLoop(t *testing.T) {
	s := sim.NewScheduler(1)
	f := &fakeMeta{sched: s, delay: time.Millisecond}
	r := NewMetaRunner(f, s, 3, 8, 1.2, 42)
	r.Start()
	s.RunFor(time.Second)
	r.Stop()

	// Closed loop at 1ms service: ~1000 ops in a simulated second.
	if r.Ops < 900 || r.Errors != 0 {
		t.Fatalf("ops = %d (errors %d), want ~1000", r.Ops, r.Errors)
	}
	// First touch creates, every later touch looks up — each working-set
	// file is created at most once, under this client's own prefix.
	seen := map[string]bool{}
	for _, p := range f.creates {
		if seen[p] {
			t.Fatalf("file created twice: %s", p)
		}
		seen[p] = true
		if !strings.HasPrefix(p, "/w3/") {
			t.Fatalf("create outside client working set: %s", p)
		}
	}
	for _, p := range f.lookups {
		if !seen[p] {
			t.Fatalf("lookup before create: %s", p)
		}
	}
	// Zipf skew: the hottest file draws a plurality of the traffic.
	hot := 0
	for _, p := range f.lookups {
		if p == MetaPath(3, 0) {
			hot++
		}
	}
	if hot*3 < len(f.lookups) {
		t.Fatalf("skew missing: hottest file got %d of %d lookups", hot, len(f.lookups))
	}
}

// TestMetaRunnerErrorBackoff: synchronous failures must not spin the
// event loop at one instant — the runner backs off and keeps counting.
func TestMetaRunnerErrorBackoff(t *testing.T) {
	s := sim.NewScheduler(1)
	f := &fakeMeta{sched: s, fail: true}
	r := NewMetaRunner(f, s, 0, 4, 0, 7)
	r.Start()
	s.RunFor(100 * time.Millisecond)
	r.Stop()
	// 1ms backoff per failure → ~100 attempts, all errors, loop alive.
	if r.Errors < 50 || r.Errors > 200 {
		t.Fatalf("errors = %d, want ~100 (backoff broken)", r.Errors)
	}
	if r.Ops != r.Errors {
		t.Fatalf("ops %d != errors %d on an always-failing surface", r.Ops, r.Errors)
	}
}
