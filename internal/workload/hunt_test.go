package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestHuntRaces is a wide-seed sweep of the randomized failure trial,
// used to hunt interleaving-dependent protocol races. Skipped in -short.
func TestHuntRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("wide sweep")
	}
	bad := 0
	for seed := int64(0); seed < 60; seed++ {
		opts := cluster.DefaultOptions()
		opts.Seed = seed*977 + 11
		opts.Clients = 4
		opts.Control.LossProb = 0.02
		cl := cluster.New(opts)
		cl.Start()
		tau := opts.Core.Tau
		rng := cl.Sched.Rand()
		wcfg := DefaultConfig()
		wcfg.Files = 5
		wcfg.BlocksPerFile = 3
		wcfg.MeanThink = 50 * time.Millisecond
		wcfg.ReadFrac, wcfg.WriteFrac, wcfg.StatFrac = 0.4, 0.4, 0.15
		Populate(cl, wcfg)
		runners := make([]*Runner, opts.Clients)
		for i := range runners {
			runners[i] = NewRunner(cl, i, wcfg, opts.Seed+int64(i))
			runners[i].Start()
		}
		for cycle := 0; cycle < 2; cycle++ {
			victim := int(rng.Int31n(int32(opts.Clients)))
			at := time.Duration(cycle)*3*tau + time.Duration(rng.Int63n(int64(tau)))
			cl.Sched.After(at, func() { cl.IsolateClient(victim) })
			cl.Sched.After(at+tau+tau/2, func() { cl.HealControl() })
		}
		cl.RunFor(8 * tau)
		for _, r := range runners {
			r.Stop()
		}
		cl.RunFor(2 * tau)
		for i := range cl.Clients {
			cl.Sync(i)
		}
		cl.Checker.FinalCheck()
		if n := len(cl.Checker.Violations()); n > 0 {
			bad++
			fmt.Printf("seed %d: %d violations; first: %v\n", opts.Seed, n, cl.Checker.Violations()[0])
		}
	}
	if bad > 0 {
		t.Fatalf("%d/60 seeds produced violations", bad)
	}
}
