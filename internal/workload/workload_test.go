package workload

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Files: 1, BlocksPerFile: 1, ReadFrac: 0.9, WriteFrac: 0.9, MeanThink: 1},
		{Files: 1, BlocksPerFile: 1, MeanThink: 0},
		{Files: 1, BlocksPerFile: 1, MeanThink: 1, DutyCycle: 2},
		{Files: 1, BlocksPerFile: 1, MeanThink: 1, DutyCycle: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestPickerDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, b := NewPicker(cfg, 7), NewPicker(cfg, 7)
	for i := 0; i < 100; i++ {
		if a.File() != b.File() || a.Op() != b.Op() || a.Think() != b.Think() || a.Block() != b.Block() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPickerZipfSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Files = 100
	p := NewPicker(cfg, 3)
	counts := make([]int, cfg.Files)
	for i := 0; i < 10000; i++ {
		counts[p.File()]++
	}
	// Zipf: the most popular file dominates.
	if counts[0] < 2000 {
		t.Fatalf("file 0 picked %d/10000 — not skewed", counts[0])
	}
	// Uniform when ZipfS = 0.
	cfg.ZipfS = 0
	p = NewPicker(cfg, 3)
	counts = make([]int, cfg.Files)
	for i := 0; i < 10000; i++ {
		counts[p.File()]++
	}
	if counts[0] > 400 {
		t.Fatalf("uniform pick skewed: %d", counts[0])
	}
}

func TestPickerOpMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadFrac, cfg.WriteFrac, cfg.StatFrac = 0.5, 0.3, 0.1
	p := NewPicker(cfg, 9)
	var counts [4]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.Op()]++
	}
	check := func(kind OpKind, want float64) {
		got := float64(counts[kind]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Fatalf("%v fraction = %.3f, want ~%.2f", kind, got, want)
		}
	}
	check(OpRead, 0.5)
	check(OpWrite, 0.3)
	check(OpStat, 0.1)
	check(OpReaddir, 0.1)
}

func TestThinkBounds(t *testing.T) {
	p := NewPicker(DefaultConfig(), 11)
	for i := 0; i < 1000; i++ {
		d := p.Think()
		if d < time.Microsecond || d > 100*DefaultConfig().MeanThink {
			t.Fatalf("think time %v out of bounds", d)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpRead; k <= OpReaddir; k++ {
		if k.String() == "" {
			t.Fatal("empty op name")
		}
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown op must format")
	}
}

func TestRunnerDrivesCluster(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Clients = 3
	cl := cluster.New(opts)
	cl.Start()

	wcfg := DefaultConfig()
	wcfg.Files = 10
	wcfg.BlocksPerFile = 4
	Populate(cl, wcfg)

	runners := make([]*Runner, len(cl.Clients))
	for i := range runners {
		runners[i] = NewRunner(cl, i, wcfg, int64(100+i))
		runners[i].Start()
	}
	cl.RunFor(30 * time.Second)
	for i, r := range runners {
		r.Stop()
		if r.Ops < 50 {
			t.Fatalf("runner %d completed only %d ops", i, r.Ops)
		}
		if r.Errors > r.Ops/10 {
			t.Fatalf("runner %d error rate too high: %d/%d", i, r.Errors, r.Ops)
		}
	}
	// The workload must exercise reads AND writes.
	var reads, writes uint64
	for _, r := range runners {
		reads += r.ByKind[OpRead]
		writes += r.ByKind[OpWrite]
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("op mix degenerate: reads=%d writes=%d", reads, writes)
	}
	// And the whole run must be consistent.
	for i := range runners {
		cl.Sync(i)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under normal contention: %v", got)
	}
}

func TestRunnerDutyCycleIdles(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Clients = 1
	cl := cluster.New(opts)
	cl.Start()
	wcfg := DefaultConfig()
	wcfg.Files = 4
	wcfg.BlocksPerFile = 2
	wcfg.DutyCycle = 0.2
	wcfg.DutyPeriod = 10 * time.Second
	Populate(cl, wcfg)

	r := NewRunner(cl, 0, wcfg, 5)
	r.Start()
	cl.RunFor(40 * time.Second)
	busy := r.Ops

	// A full-duty runner does far more work in the same interval.
	cl2 := cluster.New(opts)
	cl2.Start()
	wcfg.DutyCycle = 1
	Populate(cl2, wcfg)
	r2 := NewRunner(cl2, 0, wcfg, 5)
	r2.Start()
	cl2.RunFor(40 * time.Second)

	if busy*2 >= r2.Ops {
		t.Fatalf("duty cycle ineffective: 20%% duty did %d ops vs full %d", busy, r2.Ops)
	}
}
