package workload

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/trace"
)

// The headline property of the content-addressed cache under the
// shared-hot-file workload: readers keep the whole file resident but pay
// for only the alphabet's worth of bytes, read-ahead serves the scans,
// and the run stays consistent under the writer's lock churn.
func TestHotFileDedupAndPrefetch(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Clients = 4
	cl := cluster.New(opts)
	cl.Start()

	cfg := DefaultHotFile()
	cfg.Readers = []int{1, 2, 3}
	PopulateHotFile(cl, cfg)

	hf := NewHotFile(cl, cfg)
	hf.Start()
	cl.RunFor(30 * time.Second)
	hf.Stop()

	if hf.Scans < 10 {
		t.Fatalf("readers completed only %d scans", hf.Scans)
	}
	if hf.Rewrites == 0 {
		t.Fatal("writer never rewrote")
	}
	if hf.Errors > hf.Scans {
		t.Fatalf("error rate too high: %d errors / %d scans", hf.Errors, hf.Scans)
	}

	// Settle: one last cold scan on reader 1 so its cache holds the whole
	// file at a deterministic instant.
	c1 := cl.Clients[1].Cache()
	c1.InvalidateAll()
	h, _ := cl.MustOpen(1, HotFilePath, false, false)
	for b := 0; b < cfg.Blocks; b++ {
		if _, errno := cl.Read(1, h, uint64(b)); errno != msg.OK {
			t.Fatalf("settle read %d: %v", b, errno)
		}
	}

	// Dedup: all Blocks pages resident, but only Alphabet distinct
	// contents' worth of bytes — the working set dedups ~Blocks/Alphabet×.
	if got := c1.ResidentPages(); got < cfg.Blocks {
		t.Fatalf("reader 1 has %d resident pages, want ≥ %d", got, cfg.Blocks)
	}
	budget := int64(cfg.Alphabet) * int64(cluster.BlockSize)
	if got := c1.ResidentBytes(); got > budget {
		t.Fatalf("reader 1 resident bytes %d exceed the alphabet budget %d — dedup ineffective", got, budget)
	}
	if cl.Reg.CounterValue("client.n11.cache.dedup_hits") == 0 {
		t.Fatal("no dedup hits on reader 1")
	}

	// Read-ahead: the sequential scans must have engaged it and the
	// prefetched pages must actually have served reads.
	var batches, hits uint64
	for _, r := range cfg.Readers {
		id := cluster.ClientID(r)
		batches += cl.Reg.CounterValue("client." + id.String() + ".prefetch_batches")
		hits += cl.Reg.CounterValue("client." + id.String() + ".cache.prefetch_hits")
	}
	if batches == 0 || hits == 0 {
		t.Fatalf("read-ahead never engaged: batches=%d hits=%d", batches, hits)
	}

	// And the whole contended run must be consistent.
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("final sync: %v", errno)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under hot-file contention: %v", got)
	}
}

// An isolated reader full of shared, prefetched pages still obeys
// Theorem 3.1: its lease expiry (cache invalidated, read-ahead drained)
// strictly precedes the server's steal on the global event order.
func TestHotFileTheorem31ReaderIsolated(t *testing.T) {
	ring := trace.NewRing(16384)
	opts := cluster.DefaultOptions()
	opts.Clients = 3
	opts.Tracer = trace.New(ring)
	cl := cluster.New(opts)
	cl.Start()

	cfg := DefaultHotFile()
	cfg.Readers = []int{1, 2}
	cfg.Writer = -1 // read-only warm-up: readers hold shared locks
	PopulateHotFile(cl, cfg)

	hf := NewHotFile(cl, cfg)
	hf.Start()
	cl.RunFor(5 * time.Second)
	hf.Stop()
	if hf.Scans == 0 {
		t.Fatal("warm-up produced no scans")
	}
	if got := cl.Clients[1].Cache().ResidentPages(); got == 0 {
		t.Fatal("reader 1 cache empty after warm-up")
	}

	// Cut reader 1 off and have the writer demand the file exclusively.
	// The shared lock can't be recalled from the dead reader, so the
	// server must wait out the lease and steal.
	cl.IsolateClient(1)
	h, _ := cl.MustOpen(0, HotFilePath, true, false)
	if errno := cl.Write(0, h, 0, HotContent(cfg.Alphabet, 1)); errno != msg.OK {
		t.Fatalf("writer after isolation: %v", errno)
	}

	events := ring.Events()
	isolated := cluster.ClientID(1)

	// The reader walked the full four-phase state machine.
	phases := events.PhaseSequence(isolated)
	want := []string{"valid", "renewal", "suspect", "flush", "expired"}
	if !trace.HasSubsequence(phases, want) {
		t.Fatalf("reader phase sequence %v missing subsequence %v", phases, want)
	}

	// Theorem 3.1: client expiry strictly precedes the server's steal.
	if n := events.Count(trace.ByNode(cluster.ServerID), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)); n != 1 {
		t.Fatalf("steal fired %d times, want 1", n)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(cluster.ServerID), trace.ByType(trace.EvStealFired))); err != nil {
		t.Fatalf("Theorem 3.1 ordering: %v", err)
	}

	// Expiry tore the reader's cache down: nothing resident, nothing
	// (prefetched or otherwise) left to serve stale reads from.
	if got := cl.Clients[1].Cache().ResidentBytes(); got != 0 {
		t.Fatalf("isolated reader still holds %d resident bytes after expiry", got)
	}

	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("final sync: %v", errno)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}
