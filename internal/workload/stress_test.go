package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/msg"
)

// TestStressRandomFailures hammers the paper's protocol with randomized
// contended workloads, message loss on the control network, and repeated
// isolate/heal cycles, then audits the complete history. The protocol's
// guarantee is unconditional: however the failures land, no concurrent
// conflicting lock use, no stale reads, no lost updates.
func TestStressRandomFailures(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			stressTrial(t, int64(trial)*977+11)
		})
	}
}

func stressTrial(t *testing.T, seed int64) {
	opts := cluster.DefaultOptions()
	opts.Seed = seed
	opts.Clients = 4
	opts.Control.LossProb = 0.02 // datagrams drop even without partitions
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau
	rng := cl.Sched.Rand()

	wcfg := DefaultConfig()
	wcfg.Files = 5
	wcfg.BlocksPerFile = 3
	wcfg.MeanThink = 50 * time.Millisecond
	wcfg.ReadFrac, wcfg.WriteFrac, wcfg.StatFrac = 0.4, 0.4, 0.15
	Populate(cl, wcfg)

	runners := make([]*Runner, opts.Clients)
	for i := range runners {
		runners[i] = NewRunner(cl, i, wcfg, seed+int64(i))
		runners[i].Start()
	}

	// Two isolate/heal cycles against random victims.
	for cycle := 0; cycle < 2; cycle++ {
		victim := int(rng.Int31n(int32(opts.Clients)))
		at := time.Duration(cycle)*3*tau + time.Duration(rng.Int63n(int64(tau)))
		cl.Sched.After(at, func() { cl.IsolateClient(victim) })
		cl.Sched.After(at+tau+tau/2, func() { cl.HealControl() })
	}

	cl.RunFor(8 * tau)
	var ops uint64
	for _, r := range runners {
		r.Stop()
		ops += r.Ops
	}
	if ops < 500 {
		t.Fatalf("workload barely ran: %d ops", ops)
	}

	// Settle and audit.
	cl.RunFor(2 * tau)
	for i := range cl.Clients {
		cl.Sync(i)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		for _, v := range got {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("%d violations after %d ops", len(got), ops)
	}

	// Everyone is functional again after the cycles.
	for i := range cl.Clients {
		if !cl.Clients[i].Registered() {
			// A final heal has happened; rejoin must complete promptly.
			cl.RunFor(2 * tau)
		}
		if !cl.Clients[i].Registered() {
			t.Fatalf("client %d never recovered", i)
		}
	}
}

// TestStressClientCrashes mixes real crashes (volatile state lost) with
// the workload: the oracle excuses crashed clients' dirty data, and the
// survivors' view stays consistent.
func TestStressClientCrashes(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Seed = 31
	opts.Clients = 3
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	wcfg := DefaultConfig()
	wcfg.Files = 4
	wcfg.BlocksPerFile = 2
	wcfg.MeanThink = 40 * time.Millisecond
	Populate(cl, wcfg)

	for i := 0; i < 2; i++ { // only clients 0 and 1 run load
		NewRunner(cl, i, wcfg, int64(i)).Start()
	}
	// Client 2 grabs a lock and dies holding it.
	h2, _ := cl.MustOpen(2, FilePath(0), true, false)
	if errno := cl.Write(2, h2, 0, make([]byte, cluster.BlockSize)); errno != msg.OK {
		t.Fatal(errno)
	}
	cl.Sched.After(2*time.Second, func() { cl.CrashClient(2) })

	cl.RunFor(4 * tau)
	for i := 0; i < 2; i++ {
		cl.Sync(i)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
	// The crashed client's lock was reclaimed: someone else can write
	// that file now.
	h0, _, errno := cl.Open(0, FilePath(0), true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Write(0, h0, 0, make([]byte, cluster.BlockSize)); errno != msg.OK {
		t.Fatalf("write after crash reclaim: %v", errno)
	}
}

// TestStressLossyBaselines sanity-checks that the SAFE baselines stay
// violation-free under loss too (their availability differs; their
// safety must not).
func TestStressLossyBaselines(t *testing.T) {
	for _, pol := range []baselines.Policy{baselines.Frangipani(), baselines.VSystem()} {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			opts := cluster.DefaultOptions()
			opts.Seed = 7
			opts.Clients = 3
			opts.Policy = pol
			opts.Control.LossProb = 0.02
			cl := cluster.New(opts)
			cl.Start()
			tau := opts.Core.Tau

			wcfg := DefaultConfig()
			wcfg.Files = 4
			wcfg.BlocksPerFile = 2
			wcfg.MeanThink = 60 * time.Millisecond
			Populate(cl, wcfg)
			for i := 0; i < opts.Clients; i++ {
				NewRunner(cl, i, wcfg, int64(i)).Start()
			}
			cl.Sched.After(2*tau, func() { cl.IsolateClient(1) })
			cl.Sched.After(3*tau+tau/2, func() { cl.HealControl() })
			cl.RunFor(6 * tau)
			cl.RunFor(2 * tau)
			for i := range cl.Clients {
				cl.Sync(i)
			}
			cl.Checker.FinalCheck()
			if got := cl.Checker.Violations(); len(got) != 0 {
				t.Fatalf("violations under %s: %v", pol.Name, got)
			}
		})
	}
}
