package workload

// The shared-hot-file workload: one file every client touches, a pool of
// readers sequentially scanning it end to end (the access pattern the
// client's read-ahead detector targets) and one writer rewriting blocks
// from a small content alphabet (the pattern the content-addressed cache
// dedups — many block indices, few distinct contents). It is the
// adversarial case for the cache bookkeeping: shared clean content,
// concurrent invalidation by the writer's exclusive-lock demands, and
// read-ahead racing both.

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
)

// HotFilePath names the shared hot file.
const HotFilePath = "/hot"

// HotFileConfig shapes the shared-hot-file workload.
type HotFileConfig struct {
	// Blocks is the size of the hot file.
	Blocks int
	// Alphabet is the number of distinct block contents; the expected
	// dedup factor of a warm scan is Blocks/Alphabet.
	Alphabet int
	// Readers are the client indices that sequentially scan the file.
	Readers []int
	// Writer is the client index that rewrites blocks, or -1 for a
	// read-only run.
	Writer int
	// ReaderThink separates a reader's consecutive full scans.
	ReaderThink time.Duration
	// WriteEvery is the writer's cadence: one block rewrite per tick.
	WriteEvery time.Duration
}

// DefaultHotFile returns the standard shared-hot-file shape: a 16-block
// file with 4 distinct contents, rescanned continuously.
func DefaultHotFile() HotFileConfig {
	return HotFileConfig{
		Blocks:      16,
		Alphabet:    4,
		Writer:      0,
		ReaderThink: 50 * time.Millisecond,
		WriteEvery:  200 * time.Millisecond,
	}
}

// HotContent returns block content k of the alphabet: a full block of a
// single distinguishing byte, so contents collide exactly when k does.
func HotContent(alphabet, k int) []byte {
	data := make([]byte, cluster.BlockSize)
	for i := range data {
		data[i] = byte('A' + k%alphabet)
	}
	return data
}

// PopulateHotFile creates the hot file with its initial alphabet-cycled
// contents and releases the populating lock so readers start symmetric.
func PopulateHotFile(cl *cluster.Cluster, cfg HotFileConfig) {
	sc := cl.SyncClient(0)
	h, attr, err := sc.Open(HotFilePath, true, true)
	if err != nil {
		panic(fmt.Sprintf("workload: hot-file open: %v", err))
	}
	for b := 0; b < cfg.Blocks; b++ {
		if err := sc.WriteAt(h, uint64(b), HotContent(cfg.Alphabet, b)); err != nil {
			panic(fmt.Sprintf("workload: hot-file write: %v", err))
		}
	}
	if err := sc.SyncAll(); err != nil {
		panic(fmt.Sprintf("workload: hot-file sync: %v", err))
	}
	if err := sc.Close(h); err != nil {
		panic(fmt.Sprintf("workload: hot-file close: %v", err))
	}
	_ = sc.ReleaseLock(attr.Ino)
}

// HotFile drives the workload on a started cluster. Like Runner it is
// fully event-driven: every completion schedules the next step.
type HotFile struct {
	cl      *cluster.Cluster
	cfg     HotFileConfig
	stopped bool

	handles  map[int]msg.Handle // reader client index → open handle
	writerH  msg.Handle
	writerOK bool

	// Scans counts completed full sequential scans across all readers;
	// Rewrites counts writer block updates; Errors counts failed ops
	// (lock churn mid-steal, stale handles, ...).
	Scans    uint64
	Rewrites uint64
	Errors   uint64
}

// NewHotFile creates the workload driver for a populated cluster.
func NewHotFile(cl *cluster.Cluster, cfg HotFileConfig) *HotFile {
	return &HotFile{cl: cl, cfg: cfg, handles: make(map[int]msg.Handle)}
}

// Start launches every reader and the writer.
func (hf *HotFile) Start() {
	for _, r := range hf.cfg.Readers {
		r := r
		hf.cl.Sched.After(0, func() { hf.startScan(r) })
	}
	if hf.cfg.Writer >= 0 {
		hf.cl.Sched.After(hf.cfg.WriteEvery, hf.writerTick)
	}
}

// Stop halts all loops after their in-flight operation.
func (hf *HotFile) Stop() { hf.stopped = true }

func (hf *HotFile) rescanAfter(r int, d time.Duration) {
	if hf.stopped {
		return
	}
	hf.cl.Sched.After(d, func() { hf.startScan(r) })
}

func (hf *HotFile) startScan(r int) {
	if hf.stopped {
		return
	}
	h, ok := hf.handles[r]
	if !ok {
		hf.cl.Clients[r].Open(HotFilePath, false, false,
			func(h msg.Handle, _ msg.Attr, errno msg.Errno) {
				if errno != msg.OK {
					hf.Errors++
					hf.rescanAfter(r, hf.cfg.ReaderThink)
					return
				}
				hf.handles[r] = h
				hf.scanBlock(r, h, 0)
			})
		return
	}
	hf.scanBlock(r, h, 0)
}

func (hf *HotFile) scanBlock(r int, h msg.Handle, idx uint64) {
	if hf.stopped {
		return
	}
	hf.cl.Clients[r].Read(h, idx, func(_ []byte, errno msg.Errno) {
		if errno != msg.OK {
			hf.Errors++
			if errno == msg.ErrBadHandle || errno == msg.ErrStale {
				delete(hf.handles, r) // invalidated by recovery: reopen
			}
			hf.rescanAfter(r, hf.cfg.ReaderThink)
			return
		}
		if idx+1 < uint64(hf.cfg.Blocks) {
			hf.scanBlock(r, h, idx+1)
			return
		}
		hf.Scans++
		hf.rescanAfter(r, hf.cfg.ReaderThink)
	})
}

func (hf *HotFile) writerTick() {
	if hf.stopped {
		return
	}
	w := hf.cfg.Writer
	if !hf.writerOK {
		hf.cl.Clients[w].Open(HotFilePath, true, false,
			func(h msg.Handle, _ msg.Attr, errno msg.Errno) {
				if errno != msg.OK {
					hf.Errors++
					hf.cl.Sched.After(hf.cfg.WriteEvery, hf.writerTick)
					return
				}
				hf.writerH, hf.writerOK = h, true
				hf.writerTick()
			})
		return
	}
	// Rewrite the next block with the next alphabet content: contents
	// stay within the alphabet, so dedup keeps working across rewrites.
	n := hf.Rewrites
	blk := n % uint64(hf.cfg.Blocks)
	data := HotContent(hf.cfg.Alphabet, int(blk+n/uint64(hf.cfg.Blocks)+1))
	hf.cl.Clients[w].Write(hf.writerH, blk, data, func(errno msg.Errno) {
		if errno != msg.OK {
			hf.Errors++
			if errno == msg.ErrBadHandle || errno == msg.ErrStale {
				hf.writerOK = false
			}
		} else {
			hf.Rewrites++
		}
		hf.cl.Sched.After(hf.cfg.WriteEvery, hf.writerTick)
	})
}
