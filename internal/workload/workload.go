// Package workload generates synthetic file-system activity for the
// experiments: a population of files with Zipf popularity, a configurable
// operation mix, exponential think times, and an activity duty cycle (the
// paper's distinction between active clients — which renew leases
// opportunistically — and idle clients — which need keep-alives — is a
// function of exactly this knob).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/sim"
)

// OpKind is one generated operation.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpStat
	OpReaddir
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpStat:
		return "stat"
	case OpReaddir:
		return "readdir"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Config shapes the generated load.
type Config struct {
	// Files is the number of files in the shared population.
	Files int
	// BlocksPerFile bounds the block index of reads/writes.
	BlocksPerFile int
	// ZipfS is the Zipf skew (s > 1; larger = more skewed). 0 disables
	// skew (uniform).
	ZipfS float64
	// ReadFrac, WriteFrac, StatFrac give the op mix; the remainder is
	// readdir. Must sum to ≤ 1.
	ReadFrac, WriteFrac, StatFrac float64
	// MeanThink is the mean exponential think time between a client's
	// operations.
	MeanThink time.Duration
	// DutyCycle in [0,1]: fraction of each period the client is active.
	// 1 = always active.
	DutyCycle float64
	// DutyPeriod is the on/off alternation period when DutyCycle < 1.
	DutyPeriod time.Duration
	// FileBase offsets this runner's file indices within the population:
	// it draws from [FileBase, FileBase+Files). Experiments use it to
	// give clients disjoint working sets (Populate must have created the
	// whole range).
	FileBase int
}

// DefaultConfig returns a moderately skewed, read-mostly workload.
func DefaultConfig() Config {
	return Config{
		Files:         50,
		BlocksPerFile: 8,
		ZipfS:         1.2,
		ReadFrac:      0.55,
		WriteFrac:     0.30,
		StatFrac:      0.10,
		MeanThink:     200 * time.Millisecond,
		DutyCycle:     1,
		DutyPeriod:    time.Minute,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Files < 1 || c.BlocksPerFile < 1:
		return fmt.Errorf("workload: need files and blocks, got %d/%d", c.Files, c.BlocksPerFile)
	case c.ReadFrac < 0 || c.WriteFrac < 0 || c.StatFrac < 0 ||
		c.ReadFrac+c.WriteFrac+c.StatFrac > 1+1e-9:
		return fmt.Errorf("workload: bad op mix %g/%g/%g", c.ReadFrac, c.WriteFrac, c.StatFrac)
	case c.MeanThink <= 0:
		return fmt.Errorf("workload: MeanThink must be positive")
	case c.DutyCycle < 0 || c.DutyCycle > 1:
		return fmt.Errorf("workload: DutyCycle must be in [0,1]")
	case c.DutyCycle < 1 && c.DutyPeriod <= 0:
		return fmt.Errorf("workload: DutyPeriod required when DutyCycle < 1")
	}
	return nil
}

// Picker draws files and operations deterministically from a seed.
type Picker struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewPicker creates a picker with its own deterministic stream.
func NewPicker(cfg Config, seed int64) *Picker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Picker{cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 {
		p.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Files-1))
	}
	return p
}

// File picks a file index by popularity.
func (p *Picker) File() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.cfg.Files)
}

// Block picks a block index within a file.
func (p *Picker) Block() uint64 { return uint64(p.rng.Intn(p.cfg.BlocksPerFile)) }

// Op picks an operation by the configured mix.
func (p *Picker) Op() OpKind {
	x := p.rng.Float64()
	switch {
	case x < p.cfg.ReadFrac:
		return OpRead
	case x < p.cfg.ReadFrac+p.cfg.WriteFrac:
		return OpWrite
	case x < p.cfg.ReadFrac+p.cfg.WriteFrac+p.cfg.StatFrac:
		return OpStat
	default:
		return OpReaddir
	}
}

// Think draws an exponential think time with the configured mean.
func (p *Picker) Think() time.Duration {
	d := time.Duration(p.rng.ExpFloat64() * float64(p.cfg.MeanThink))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	if d > 100*p.cfg.MeanThink {
		d = 100 * p.cfg.MeanThink
	}
	return d
}

// FilePath names file i in the shared population.
func FilePath(i int) string { return fmt.Sprintf("/pop/f%04d", i) }

// Runner drives one client of a cluster with generated load. It is fully
// event-driven: Start schedules the first operation and each completion
// schedules the next after a think time.
type Runner struct {
	cl     *cluster.Cluster
	client int
	cfg    Config
	pick   *Picker

	handles map[int]openFile // file index → open handle
	stopped bool

	// Ops counts completed operations; Errors counts failures (refused
	// while quiescing, stale handles after recovery, ...).
	Ops    uint64
	Errors uint64
	ByKind [4]uint64
}

// openFile is a lazily opened population file.
type openFile struct {
	h   msg.Handle
	ino msg.ObjectID
}

// NewRunner creates a load runner for client index `client`.
func NewRunner(cl *cluster.Cluster, client int, cfg Config, seed int64) *Runner {
	return &Runner{
		cl:      cl,
		client:  client,
		cfg:     cfg,
		pick:    NewPicker(cfg, seed),
		handles: make(map[int]openFile),
	}
}

// Populate creates the shared file population and pre-sizes every file.
// Call once per cluster, before starting runners.
func Populate(cl *cluster.Cluster, cfg Config) {
	sc := cl.SyncClient(0)
	if _, err := sc.Lookup("/pop"); err == msg.ErrNoEnt {
		if _, err := sc.Create("/pop", true); err != nil {
			panic(fmt.Sprintf("workload: mkdir /pop: %v", err))
		}
	}
	data := make([]byte, cluster.BlockSize)
	for i := 0; i < cfg.Files; i++ {
		h, _, err := sc.Open(FilePath(i), true, true)
		if err != nil {
			panic(fmt.Sprintf("workload: populate open: %v", err))
		}
		for b := 0; b < cfg.BlocksPerFile; b++ {
			if err := sc.WriteAt(h, uint64(b), data); err != nil {
				panic(fmt.Sprintf("workload: populate write: %v", err))
			}
		}
		if err := sc.SyncAll(); err != nil {
			panic(fmt.Sprintf("workload: populate sync: %v", err))
		}
		if err := sc.Close(h); err != nil {
			panic(fmt.Sprintf("workload: populate close: %v", err))
		}
	}
	// Drop the populator's exclusive locks so the measured clients start
	// symmetric.
	for i := 0; i < cfg.Files; i++ {
		attr, err := sc.Lookup(FilePath(i))
		if err != nil {
			panic(fmt.Sprintf("workload: populate lookup: %v", err))
		}
		// A failed release is tolerable (the lock may already be gone).
		_ = sc.ReleaseLock(attr.Ino)
	}
}

// Start begins generating load. The runner stops at Stop or when the
// scheduler drains.
func (r *Runner) Start() { r.scheduleNext(0) }

// Stop halts the runner after the current operation.
func (r *Runner) Stop() { r.stopped = true }

func (r *Runner) active(now sim.Time) bool {
	if r.cfg.DutyCycle >= 1 {
		return true
	}
	phase := math.Mod(float64(now)/float64(r.cfg.DutyPeriod), 1)
	return phase < r.cfg.DutyCycle
}

func (r *Runner) scheduleNext(delay time.Duration) {
	if r.stopped {
		return
	}
	r.cl.Sched.After(delay, r.step)
}

func (r *Runner) step() {
	if r.stopped {
		return
	}
	if !r.active(r.cl.Sched.Now()) {
		// Idle stretch: check back in at the next duty boundary.
		r.scheduleNext(r.cfg.DutyPeriod / 10)
		return
	}
	file := r.pick.File()
	op := r.pick.Op()
	next := func(errno msg.Errno) {
		r.Ops++
		r.ByKind[op]++
		if errno != msg.OK {
			r.Errors++
			if errno == msg.ErrBadHandle || errno == msg.ErrStale {
				// Handle invalidated by recovery: reopen next time.
				delete(r.handles, file)
			}
		}
		r.scheduleNext(r.pick.Think())
	}
	file += r.cfg.FileBase
	r.withHandle(file, func(of openFile, errno msg.Errno) {
		if errno != msg.OK {
			next(errno)
			return
		}
		c := r.cl.Clients[r.client]
		switch op {
		case OpRead:
			c.Read(of.h, r.pick.Block(), func(_ []byte, e msg.Errno) { next(e) })
		case OpWrite:
			data := make([]byte, cluster.BlockSize)
			data[0] = byte(r.Ops)
			c.Write(of.h, r.pick.Block(), data, func(e msg.Errno) { next(e) })
		case OpStat:
			c.Stat(of.ino, func(_ msg.Attr, e msg.Errno) { next(e) })
		case OpReaddir:
			c.Readdir(1, func(_ []msg.DirEntry, e msg.Errno) { next(e) }) // root
		}
	})
}

// withHandle opens the file lazily (always for write so the handle serves
// both op kinds).
func (r *Runner) withHandle(file int, fn func(openFile, msg.Errno)) {
	if of, ok := r.handles[file]; ok {
		fn(of, msg.OK)
		return
	}
	r.cl.Clients[r.client].Open(FilePath(file), true, false,
		func(h msg.Handle, attr msg.Attr, errno msg.Errno) {
			of := openFile{h: h, ino: attr.Ino}
			if errno == msg.OK {
				r.handles[file] = of
			}
			fn(of, errno)
		})
}
