package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

// MetaOps is the metadata surface the sharded scale benchmark drives.
// shard.Node satisfies it: every call is transparently routed to the
// authority the placement map assigns the path.
type MetaOps interface {
	Lookup(path string, cb func(attr msg.Attr, errno msg.Errno))
	Create(path string, isDir bool, cb func(attr msg.Attr, errno msg.Errno))
}

// MetaRunner drives one client with closed-loop metadata traffic: each
// completion immediately issues the next operation, so aggregate
// throughput is bounded by the authorities' service capacity — exactly
// the quantity the shard-scaling curve measures. The runner touches a
// private Zipf-skewed working set /w<client>/f<j>: per-client
// namespaces hash across every shard (keeping all authorities loaded)
// while avoiding cross-client lock conflicts, which would measure
// contention rather than capacity. A file is created on first touch and
// looked up ever after.
type MetaRunner struct {
	ops     MetaOps
	sched   *sim.Scheduler
	client  int
	files   int
	rng     *rand.Rand
	zipf    *rand.Zipf
	created []bool
	stopped bool

	// Ops counts completed operations; Errors counts failures.
	Ops    uint64
	Errors uint64
}

// NewMetaRunner creates a closed-loop metadata runner for client index
// `client` over a working set of `files` paths with Zipf skew s
// (s <= 1 → uniform).
func NewMetaRunner(ops MetaOps, sched *sim.Scheduler, client, files int, zipfS float64, seed int64) *MetaRunner {
	if files < 1 {
		panic("workload: MetaRunner needs at least one file")
	}
	rng := rand.New(rand.NewSource(seed))
	r := &MetaRunner{
		ops: ops, sched: sched, client: client, files: files,
		rng: rng, created: make([]bool, files),
	}
	if zipfS > 1 && files > 1 {
		r.zipf = rand.NewZipf(rng, zipfS, 1, uint64(files-1))
	}
	return r
}

// MetaPath names file j of client c's working set.
func MetaPath(c, j int) string { return fmt.Sprintf("/w%d/f%d", c, j) }

// Start issues the first operation; the loop then self-sustains.
func (r *MetaRunner) Start() { r.step() }

// Stop halts the runner after the in-flight operation completes.
func (r *MetaRunner) Stop() { r.stopped = true }

func (r *MetaRunner) pick() int {
	if r.zipf != nil {
		return int(r.zipf.Uint64())
	}
	return r.rng.Intn(r.files)
}

func (r *MetaRunner) step() {
	if r.stopped {
		return
	}
	j := r.pick()
	done := func(_ msg.Attr, errno msg.Errno) {
		r.Ops++
		if errno == msg.OK {
			r.sched.After(0, r.step)
			return
		}
		r.Errors++
		// Back off: a synchronous refusal (not yet admitted, unroutable)
		// re-issued at delay 0 would spin the event loop in place.
		r.sched.After(time.Millisecond, r.step)
	}
	if !r.created[j] {
		r.created[j] = true
		r.ops.Create(MetaPath(r.client, j), false, done)
		return
	}
	r.ops.Lookup(MetaPath(r.client, j), done)
}
