// Package disk implements the shared storage devices on the SAN. Per the
// paper (§2), the devices are deliberately dumb: they execute block reads
// and writes for any initiator, enforce a fence table on behalf of the
// servers, and — solely for the GFS comparison baseline — implement
// dlock, an expiring lock over a disk-address range. They keep no network
// views, run no membership protocol, and never initiate messages.
package disk

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockstore"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// BlockSize is the data block size used throughout the installation.
const BlockSize = blockstore.BlockSize

// zeroBlock serves every hole read (a block never written). It is shared
// and read-only by contract: everything downstream of a DiskReadRes
// either copies the data or treats it as immutable, so handing out one
// block of zeros replaces a fresh 4 KiB allocation per hole read.
var zeroBlock = make([]byte, BlockSize)

// Sender transmits a message on the SAN.
type Sender func(to msg.NodeID, m msg.Message)

// Observer lets the consistency oracle watch data movement. All fields
// are optional. The Ver stamps are oracle metadata that rides along with
// block data; the protocol itself never reads them.
type Observer struct {
	// Committed fires when a write reaches stable storage.
	Committed func(disk msg.NodeID, block uint64, ver uint64, writer msg.NodeID)
	// Served fires when a read returns data.
	Served func(disk msg.NodeID, block uint64, ver uint64, reader msg.NodeID)
	// Rejected fires when a fenced initiator's I/O is refused.
	Rejected func(disk msg.NodeID, initiator msg.NodeID)
	// Torn fires when the media reports a torn block: at the open-time
	// recovery pass, or when a read is refused because the block's
	// checksum no longer matches its trailer.
	Torn func(disk msg.NodeID, block uint64)
}

// Config sizes and times a disk.
type Config struct {
	// Blocks is the device capacity in blocks.
	Blocks uint64
	// ServiceTime is the per-operation latency added before the reply is
	// sent (seek+transfer, measured on the disk's own clock).
	ServiceTime time.Duration
}

// DefaultConfig returns a small, fast disk suitable for simulation.
func DefaultConfig() Config {
	return Config{Blocks: 1 << 16, ServiceTime: 100 * time.Microsecond}
}

type dlock struct {
	start, count uint64
	owner        msg.NodeID
	expires      sim.Time // on the disk's clock
}

func (l dlock) overlaps(start uint64, count uint32) bool {
	return start < l.start+l.count && l.start < start+uint64(count)
}

// Disk is one SAN block device.
type Disk struct {
	id     msg.NodeID
	cfg    Config
	clock  sim.Clock
	send   Sender
	obs    Observer
	media  blockstore.Media
	tracer *trace.Tracer

	dlocks []dlock

	// busyUntil serializes media operations: a single actuator services
	// one request at a time, so concurrent requests queue (local clock).
	busyUntil sim.Time

	reads, writes, fencedOps *stats.Counter
	queueWait                *stats.Histogram
	// mediaErrs counts refused media answers (torn blocks, I/O errors).
	// It is created lazily so an installation that never hits one —
	// every simulation — registers exactly the instruments it always
	// did.
	reg       *stats.Registry
	prefix    string
	mediaErrs *stats.Counter
	// batchOps/batchBlocks count vectored operations and the blocks they
	// carried (lazy, like mediaErrs): blocks/ops is the mean batch size.
	batchOps    *stats.Counter
	batchBlocks *stats.Counter
}

// Option customizes a disk beyond its Config.
type Option func(*Disk)

// WithMedia selects the storage the disk serves from (default: a fresh
// in-memory blockstore.Mem, the simulator's media). A file-backed
// blockstore.File makes the device durable: acknowledged writes and the
// fence table survive a crash-restart of the hosting process.
func WithMedia(m blockstore.Media) Option {
	return func(d *Disk) {
		if m != nil {
			d.media = m
		}
	}
}

// WithTracer attaches a trace bus: media durability events (open-time
// recovery, torn blocks, refused reads) are emitted as EvDisk events.
func WithTracer(tr *trace.Tracer) Option {
	return func(d *Disk) { d.tracer = tr }
}

// New creates a disk. send transmits replies on the SAN; reg records the
// disk's operation counters (may be nil). If the media carries recovered
// state (a reopened file-backed store), the recovery outcome is reported
// through the Observer and the tracer before the disk serves anything.
func New(id msg.NodeID, cfg Config, clock sim.Clock, send Sender, reg *stats.Registry, obs Observer, opts ...Option) *Disk {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	prefix := fmt.Sprintf("disk.%v.", id)
	d := &Disk{
		id:        id,
		cfg:       cfg,
		clock:     clock,
		send:      send,
		obs:       obs,
		media:     blockstore.NewMem(),
		reads:     reg.Counter(prefix + "reads"),
		writes:    reg.Counter(prefix + "writes"),
		fencedOps: reg.Counter(prefix + "rejected"),
		queueWait: reg.Histogram(prefix + "queue_wait"),
		reg:       reg,
		prefix:    prefix,
	}
	for _, opt := range opts {
		opt(d)
	}
	d.reportRecovery()
	return d
}

// reportRecovery surfaces the media's open-time recovery pass through
// the trace bus and the observer: one summary event, one fence-replay
// event per restored fence, one torn event per damaged block.
func (d *Disk) reportRecovery() {
	rep := d.media.Recovery()
	if !rep.Recovered {
		return
	}
	d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
		Note: fmt.Sprintf("recovered journal=%d fenced=%d verified=%d torn=%d",
			rep.JournalRecords, len(rep.Fenced), rep.Verified, len(rep.Torn))})
	for _, target := range rep.Fenced {
		d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
			Peer: target, Note: "fence-replay"})
	}
	for _, block := range rep.Torn {
		d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
			Block: block, Note: "torn"})
		if d.obs.Torn != nil {
			d.obs.Torn(d.id, block)
		}
	}
}

func (d *Disk) trace(e trace.Event) {
	if d.tracer.Enabled() {
		d.tracer.Emit(e)
	}
}

// mediaFailed accounts and reports one refused media answer and returns
// the errno the reply should carry.
func (d *Disk) mediaFailed(block uint64, err error) msg.Errno {
	if d.mediaErrs == nil {
		d.mediaErrs = d.reg.Counter(d.prefix + "media_errors")
	}
	d.mediaErrs.Inc()
	if errors.Is(err, blockstore.ErrTorn) {
		d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
			Block: block, Note: "torn-read"})
		if d.obs.Torn != nil {
			d.obs.Torn(d.id, block)
		}
		return msg.ErrTorn
	}
	d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
		Block: block, Note: "media-error: " + err.Error()})
	return msg.ErrMedia
}

// ID returns the disk's node ID.
func (d *Disk) ID() msg.NodeID { return d.id }

// Capacity returns the number of blocks.
func (d *Disk) Capacity() uint64 { return d.cfg.Blocks }

// Deliver handles one SAN datagram. It is the disk's network handler.
func (d *Disk) Deliver(env msg.Envelope) {
	switch m := env.Payload.(type) {
	case *msg.DiskRead:
		d.withService(func() { d.read(m) })
	case *msg.DiskWrite:
		// The write payload may alias a borrowed receive buffer, and
		// withService can defer execution past the handler's return —
		// retain the borrow until the media has consumed the data.
		env.Retain()
		d.withService(func() { d.write(m); env.Release() })
	case *msg.DiskReadV:
		// A vectored batch occupies ONE service slot: the actuator pays one
		// seek for the whole transfer, which is the point of scatter-gather.
		d.withService(func() { d.readV(m) })
	case *msg.DiskWriteV:
		env.Retain()
		d.withService(func() { d.writeV(m); env.Release() })
	case *msg.FenceSet:
		// Fencing is a control operation: no media access, no service time.
		d.fence(m)
	case *msg.DLockAcquire:
		d.withService(func() { d.dlockAcquire(m) })
	case *msg.DLockRelease:
		d.withService(func() { d.dlockRelease(m) })
	default:
		// Dumb device: silently ignore anything it does not understand.
	}
}

// withService models a single-actuator device: requests are serviced one
// at a time, ServiceTime each, FIFO. Concurrent arrivals queue, so a
// burst of N operations (e.g. a phase-4 flush of N dirty pages) takes
// ~N·ServiceTime — which is exactly what makes the flush-window ablation
// (experiment A1) meaningful.
func (d *Disk) withService(fn func()) {
	if d.cfg.ServiceTime <= 0 {
		fn()
		return
	}
	now := d.clock.Now()
	start := now
	if d.busyUntil.After(start) {
		start = d.busyUntil
	}
	d.queueWait.Observe(start.Sub(now))
	d.busyUntil = start.Add(d.cfg.ServiceTime)
	d.clock.AfterFunc(d.busyUntil.Sub(now), fn)
}

func (d *Disk) read(m *msg.DiskRead) {
	res := &msg.DiskReadRes{Req: m.Req}
	switch {
	case d.media.Fenced(m.Client):
		d.fencedOps.Inc()
		res.Err = msg.ErrFenced
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
	case m.Block >= d.cfg.Blocks:
		res.Err = msg.ErrRange
	default:
		d.reads.Inc()
		data, ver, ok, err := d.media.Read(m.Block)
		switch {
		case err != nil:
			res.Err = d.mediaFailed(m.Block, err)
		case ok:
			res.Data = data
			res.Ver = ver
		default:
			res.Data = zeroBlock // unwritten blocks read as zeros
		}
		if res.Err == msg.OK && d.obs.Served != nil {
			d.obs.Served(d.id, m.Block, res.Ver, m.Client)
		}
	}
	d.send(m.Client, res)
}

func (d *Disk) write(m *msg.DiskWrite) {
	res := &msg.DiskWriteRes{Req: m.Req}
	switch {
	case d.media.Fenced(m.Client):
		d.fencedOps.Inc()
		res.Err = msg.ErrFenced
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
	case m.Block >= d.cfg.Blocks:
		res.Err = msg.ErrRange
	case len(m.Data) > BlockSize:
		res.Err = msg.ErrRange
	default:
		// The acknowledgment below is the protocol's durability point:
		// Media.Write returns only once the block is stable (for the
		// file-backed store, after the data and trailer are written and
		// fsynced), so a crash after the ACK cannot lose the write.
		if err := d.media.Write(m.Block, m.Data, m.Ver); err != nil {
			res.Err = d.mediaFailed(m.Block, err)
		} else {
			d.writes.Inc()
			if d.obs.Committed != nil {
				d.obs.Committed(d.id, m.Block, m.Ver, m.Client)
			}
		}
	}
	d.send(m.Client, res)
}

// batchAccount records one vectored operation of n blocks and emits its
// EvDisk trace. The counters are created lazily (like mediaErrs) so an
// installation that never sends a batch registers exactly the instruments
// it always did.
func (d *Disk) batchAccount(op string, n int) {
	if d.batchOps == nil {
		d.batchOps = d.reg.Counter(d.prefix + "batched_ops")
		d.batchBlocks = d.reg.Counter(d.prefix + "batched_blocks")
	}
	d.batchOps.Inc()
	d.batchBlocks.Add(uint64(n))
	d.trace(trace.Event{Type: trace.EvDisk, Node: d.id, Time: d.clock.Now(),
		Note: fmt.Sprintf("%s n=%d", op, n)})
}

// writeV executes a vectored write as one device operation: per-block
// fence/range checks, then a single Media.WriteV whose group commit makes
// the acknowledgment mean the whole batch is durable. Partial failures
// degrade to per-block errnos; Err carries the first failure.
func (d *Disk) writeV(m *msg.DiskWriteV) {
	n := len(m.Blocks)
	res := &msg.DiskWriteVRes{Req: m.Req, Errs: make([]msg.Errno, n)}
	fail := func(e msg.Errno) {
		res.Err = e
		for i := range res.Errs {
			res.Errs[i] = e
		}
		d.send(m.Client, res)
	}
	if d.media.Fenced(m.Client) {
		// Fencing is per initiator, not per block: a fenced client's whole
		// batch is refused in one judgment.
		d.fencedOps.Inc()
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
		fail(msg.ErrFenced)
		return
	}
	if len(m.Data) != n*BlockSize {
		fail(msg.ErrRange)
		return
	}
	batch := make([]blockstore.BlockWrite, 0, n)
	pos := make([]int, 0, n) // batch index -> request index
	for i, bv := range m.Blocks {
		if bv.Block >= d.cfg.Blocks {
			res.Errs[i] = msg.ErrRange
			continue
		}
		batch = append(batch, blockstore.BlockWrite{
			Block: bv.Block,
			Data:  m.Data[i*BlockSize : (i+1)*BlockSize],
			Ver:   bv.Ver,
		})
		pos = append(pos, i)
	}
	for j, err := range d.media.WriteV(batch) {
		i := pos[j]
		if err != nil {
			res.Errs[i] = d.mediaFailed(batch[j].Block, err)
			continue
		}
		d.writes.Inc()
		if d.obs.Committed != nil {
			d.obs.Committed(d.id, batch[j].Block, batch[j].Ver, m.Client)
		}
	}
	for _, e := range res.Errs {
		if e != msg.OK {
			res.Err = e
			break
		}
	}
	d.batchAccount("writev", n)
	d.send(m.Client, res)
}

// readV serves a vectored read as one device operation. Blocks[i] lands
// in Data[i·BlockSize:(i+1)·BlockSize]; unwritten blocks read as zeros,
// per-block failures as errnos with a zero payload slot.
func (d *Disk) readV(m *msg.DiskReadV) {
	n := len(m.Blocks)
	res := &msg.DiskReadVRes{
		Req:  m.Req,
		Errs: make([]msg.Errno, n),
		Vers: make([]uint64, n),
		Data: make([]byte, n*BlockSize),
	}
	if d.media.Fenced(m.Client) {
		d.fencedOps.Inc()
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
		res.Err = msg.ErrFenced
		res.Data = nil
		for i := range res.Errs {
			res.Errs[i] = msg.ErrFenced
		}
		d.send(m.Client, res)
		return
	}
	for i, block := range m.Blocks {
		if block >= d.cfg.Blocks {
			res.Errs[i] = msg.ErrRange
			continue
		}
		d.reads.Inc()
		data, ver, ok, err := d.media.Read(block)
		if err != nil {
			res.Errs[i] = d.mediaFailed(block, err)
			continue
		}
		if ok {
			copy(res.Data[i*BlockSize:(i+1)*BlockSize], data)
			res.Vers[i] = ver
		}
		if d.obs.Served != nil {
			d.obs.Served(d.id, block, res.Vers[i], m.Client)
		}
	}
	for _, e := range res.Errs {
		if e != msg.OK {
			res.Err = e
			break
		}
	}
	d.batchAccount("readv", n)
	d.send(m.Client, res)
}

func (d *Disk) fence(m *msg.FenceSet) {
	res := &msg.FenceRes{Req: m.Req}
	// Durable before acknowledged: the file-backed media journals and
	// fsyncs the fence record before SetFence returns, so a FenceRes
	// implies the fence survives a disk-controller restart (§2.1).
	if err := d.media.SetFence(m.Target, m.On); err != nil {
		res.Err = d.mediaFailed(0, err)
	}
	d.send(m.Admin, res)
}

// Fenced reports whether an initiator is currently fenced (test hook).
func (d *Disk) Fenced(id msg.NodeID) bool { return d.media.Fenced(id) }

// Media returns the storage the disk serves from (test/bootstrap hook).
func (d *Disk) Media() blockstore.Media { return d.media }

// Close releases the disk's media. The disk must no longer be serving.
func (d *Disk) Close() error { return d.media.Close() }

// PeekBlock returns a copy of a block's stable contents and version
// (oracle/test hook; not reachable over the SAN protocol). Torn or
// otherwise unreadable blocks report ok=false.
func (d *Disk) PeekBlock(block uint64) (data []byte, ver uint64, ok bool) {
	data, ver, ok, err := d.media.Read(block)
	if err != nil || !ok {
		return nil, 0, false
	}
	// Media may return its internal buffer (read-only contract); PeekBlock
	// promises a copy the caller owns.
	return append([]byte(nil), data...), ver, true
}

// --- GFS-baseline dlocks ----------------------------------------------------

func (d *Disk) dlockAcquire(m *msg.DLockAcquire) {
	now := d.clock.Now()
	d.expireDlocks(now)
	res := &msg.DLockRes{Req: m.Req}
	if d.media.Fenced(m.Client) {
		res.Err = msg.ErrFenced
		d.send(m.Client, res)
		return
	}
	for i := range d.dlocks {
		l := &d.dlocks[i]
		if l.overlaps(m.Start, m.Count) {
			if l.owner == m.Client && l.start == m.Start && l.count == uint64(m.Count) {
				// Re-acquire of the identical range extends the TTL. A
				// merely-overlapping self-owned range must NOT: silently
				// extending a different lock would leave the requested
				// range partly unprotected while the client believes it
				// holds it.
				l.expires = now.Add(m.TTL)
				d.send(m.Client, res)
				return
			}
			res.Err = msg.ErrDLockHeld
			d.send(m.Client, res)
			return
		}
	}
	d.dlocks = append(d.dlocks, dlock{
		start: m.Start, count: uint64(m.Count), owner: m.Client,
		expires: now.Add(m.TTL),
	})
	d.send(m.Client, res)
}

func (d *Disk) dlockRelease(m *msg.DLockRelease) {
	res := &msg.DLockRes{Req: m.Req}
	kept := d.dlocks[:0]
	for _, l := range d.dlocks {
		if l.owner == m.Client && l.start == m.Start && l.count == uint64(m.Count) {
			continue
		}
		kept = append(kept, l)
	}
	d.dlocks = kept
	d.send(m.Client, res)
}

func (d *Disk) expireDlocks(now sim.Time) {
	kept := d.dlocks[:0]
	for _, l := range d.dlocks {
		if now.Before(l.expires) {
			kept = append(kept, l)
		}
	}
	d.dlocks = kept
}

// DLockCount returns the number of live dlocks (test hook).
func (d *Disk) DLockCount() int {
	d.expireDlocks(d.clock.Now())
	return len(d.dlocks)
}
