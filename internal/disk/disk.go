// Package disk implements the shared storage devices on the SAN. Per the
// paper (§2), the devices are deliberately dumb: they execute block reads
// and writes for any initiator, enforce a fence table on behalf of the
// servers, and — solely for the GFS comparison baseline — implement
// dlock, an expiring lock over a disk-address range. They keep no network
// views, run no membership protocol, and never initiate messages.
package disk

import (
	"fmt"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// BlockSize is the data block size used throughout the installation.
const BlockSize = 4096

// Sender transmits a message on the SAN.
type Sender func(to msg.NodeID, m msg.Message)

// Observer lets the consistency oracle watch data movement. All fields
// are optional. The Ver stamps are oracle metadata that rides along with
// block data; the protocol itself never reads them.
type Observer struct {
	// Committed fires when a write reaches stable storage.
	Committed func(disk msg.NodeID, block uint64, ver uint64, writer msg.NodeID)
	// Served fires when a read returns data.
	Served func(disk msg.NodeID, block uint64, ver uint64, reader msg.NodeID)
	// Rejected fires when a fenced initiator's I/O is refused.
	Rejected func(disk msg.NodeID, initiator msg.NodeID)
}

// Config sizes and times a disk.
type Config struct {
	// Blocks is the device capacity in blocks.
	Blocks uint64
	// ServiceTime is the per-operation latency added before the reply is
	// sent (seek+transfer, measured on the disk's own clock).
	ServiceTime time.Duration
}

// DefaultConfig returns a small, fast disk suitable for simulation.
func DefaultConfig() Config {
	return Config{Blocks: 1 << 16, ServiceTime: 100 * time.Microsecond}
}

type dlock struct {
	start, count uint64
	owner        msg.NodeID
	expires      sim.Time // on the disk's clock
}

func (l dlock) overlaps(start uint64, count uint32) bool {
	return start < l.start+l.count && l.start < start+uint64(count)
}

// Disk is one SAN block device.
type Disk struct {
	id    msg.NodeID
	cfg   Config
	clock sim.Clock
	send  Sender
	obs   Observer

	data   map[uint64][]byte
	vers   map[uint64]uint64
	fenced map[msg.NodeID]bool
	dlocks []dlock

	// busyUntil serializes media operations: a single actuator services
	// one request at a time, so concurrent requests queue (local clock).
	busyUntil sim.Time

	reads, writes, fencedOps *stats.Counter
	queueWait                *stats.Histogram
}

// New creates a disk. send transmits replies on the SAN; reg records the
// disk's operation counters (may be nil).
func New(id msg.NodeID, cfg Config, clock sim.Clock, send Sender, reg *stats.Registry, obs Observer) *Disk {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	prefix := fmt.Sprintf("disk.%v.", id)
	return &Disk{
		id:        id,
		cfg:       cfg,
		clock:     clock,
		send:      send,
		obs:       obs,
		data:      make(map[uint64][]byte),
		vers:      make(map[uint64]uint64),
		fenced:    make(map[msg.NodeID]bool),
		reads:     reg.Counter(prefix + "reads"),
		writes:    reg.Counter(prefix + "writes"),
		fencedOps: reg.Counter(prefix + "rejected"),
		queueWait: reg.Histogram(prefix + "queue_wait"),
	}
}

// ID returns the disk's node ID.
func (d *Disk) ID() msg.NodeID { return d.id }

// Capacity returns the number of blocks.
func (d *Disk) Capacity() uint64 { return d.cfg.Blocks }

// Deliver handles one SAN datagram. It is the disk's network handler.
func (d *Disk) Deliver(env msg.Envelope) {
	switch m := env.Payload.(type) {
	case *msg.DiskRead:
		d.withService(func() { d.read(m) })
	case *msg.DiskWrite:
		d.withService(func() { d.write(m) })
	case *msg.FenceSet:
		// Fencing is a control operation: no media access, no service time.
		d.fence(m)
	case *msg.DLockAcquire:
		d.withService(func() { d.dlockAcquire(m) })
	case *msg.DLockRelease:
		d.withService(func() { d.dlockRelease(m) })
	default:
		// Dumb device: silently ignore anything it does not understand.
	}
}

// withService models a single-actuator device: requests are serviced one
// at a time, ServiceTime each, FIFO. Concurrent arrivals queue, so a
// burst of N operations (e.g. a phase-4 flush of N dirty pages) takes
// ~N·ServiceTime — which is exactly what makes the flush-window ablation
// (experiment A1) meaningful.
func (d *Disk) withService(fn func()) {
	if d.cfg.ServiceTime <= 0 {
		fn()
		return
	}
	now := d.clock.Now()
	start := now
	if d.busyUntil.After(start) {
		start = d.busyUntil
	}
	d.queueWait.Observe(start.Sub(now))
	d.busyUntil = start.Add(d.cfg.ServiceTime)
	d.clock.AfterFunc(d.busyUntil.Sub(now), fn)
}

func (d *Disk) read(m *msg.DiskRead) {
	res := &msg.DiskReadRes{Req: m.Req}
	switch {
	case d.fenced[m.Client]:
		d.fencedOps.Inc()
		res.Err = msg.ErrFenced
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
	case m.Block >= d.cfg.Blocks:
		res.Err = msg.ErrRange
	default:
		d.reads.Inc()
		if b, ok := d.data[m.Block]; ok {
			res.Data = append([]byte(nil), b...)
			res.Ver = d.vers[m.Block]
		} else {
			res.Data = make([]byte, BlockSize) // unwritten blocks read as zeros
		}
		if d.obs.Served != nil {
			d.obs.Served(d.id, m.Block, res.Ver, m.Client)
		}
	}
	d.send(m.Client, res)
}

func (d *Disk) write(m *msg.DiskWrite) {
	res := &msg.DiskWriteRes{Req: m.Req}
	switch {
	case d.fenced[m.Client]:
		d.fencedOps.Inc()
		res.Err = msg.ErrFenced
		if d.obs.Rejected != nil {
			d.obs.Rejected(d.id, m.Client)
		}
	case m.Block >= d.cfg.Blocks:
		res.Err = msg.ErrRange
	case len(m.Data) > BlockSize:
		res.Err = msg.ErrRange
	default:
		d.writes.Inc()
		buf := make([]byte, BlockSize)
		copy(buf, m.Data)
		d.data[m.Block] = buf
		d.vers[m.Block] = m.Ver
		if d.obs.Committed != nil {
			d.obs.Committed(d.id, m.Block, m.Ver, m.Client)
		}
	}
	d.send(m.Client, res)
}

func (d *Disk) fence(m *msg.FenceSet) {
	if m.On {
		d.fenced[m.Target] = true
	} else {
		delete(d.fenced, m.Target)
	}
	d.send(m.Admin, &msg.FenceRes{Req: m.Req})
}

// Fenced reports whether an initiator is currently fenced (test hook).
func (d *Disk) Fenced(id msg.NodeID) bool { return d.fenced[id] }

// PeekBlock returns a copy of a block's stable contents and version
// (oracle/test hook; not reachable over the SAN protocol).
func (d *Disk) PeekBlock(block uint64) (data []byte, ver uint64, ok bool) {
	b, ok := d.data[block]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), b...), d.vers[block], true
}

// --- GFS-baseline dlocks ----------------------------------------------------

func (d *Disk) dlockAcquire(m *msg.DLockAcquire) {
	now := d.clock.Now()
	d.expireDlocks(now)
	res := &msg.DLockRes{Req: m.Req}
	if d.fenced[m.Client] {
		res.Err = msg.ErrFenced
		d.send(m.Client, res)
		return
	}
	for i := range d.dlocks {
		l := &d.dlocks[i]
		if l.overlaps(m.Start, m.Count) {
			if l.owner == m.Client {
				// Re-acquire extends the TTL.
				l.expires = now.Add(m.TTL)
				d.send(m.Client, res)
				return
			}
			res.Err = msg.ErrDLockHeld
			d.send(m.Client, res)
			return
		}
	}
	d.dlocks = append(d.dlocks, dlock{
		start: m.Start, count: uint64(m.Count), owner: m.Client,
		expires: now.Add(m.TTL),
	})
	d.send(m.Client, res)
}

func (d *Disk) dlockRelease(m *msg.DLockRelease) {
	res := &msg.DLockRes{Req: m.Req}
	kept := d.dlocks[:0]
	for _, l := range d.dlocks {
		if l.owner == m.Client && l.start == m.Start && l.count == uint64(m.Count) {
			continue
		}
		kept = append(kept, l)
	}
	d.dlocks = kept
	d.send(m.Client, res)
}

func (d *Disk) expireDlocks(now sim.Time) {
	kept := d.dlocks[:0]
	for _, l := range d.dlocks {
		if now.Before(l.expires) {
			kept = append(kept, l)
		}
	}
	d.dlocks = kept
}

// DLockCount returns the number of live dlocks (test hook).
func (d *Disk) DLockCount() int {
	d.expireDlocks(d.clock.Now())
	return len(d.dlocks)
}
