package disk

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rig wires one disk to a capture of its outbound replies, with a zero
// service time by default so tests see replies synchronously.
type rig struct {
	s       *sim.Scheduler
	d       *Disk
	replies []msg.Message
}

func newRig(t *testing.T, cfg Config, obs Observer) *rig {
	t.Helper()
	r := &rig{s: sim.NewScheduler(1)}
	clock := r.s.NewClock(1, 0)
	r.d = New(9, cfg, clock, func(to msg.NodeID, m msg.Message) {
		r.replies = append(r.replies, m)
	}, stats.NewRegistry(), obs)
	return r
}

func (r *rig) deliver(m msg.Message) {
	r.d.Deliver(msg.Envelope{From: 1, To: 9, Payload: m})
	r.s.Run()
}

func (r *rig) last() msg.Message { return r.replies[len(r.replies)-1] }

func TestReadUnwrittenBlockIsZeros(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	r.deliver(&msg.DiskRead{Client: 1, Req: 1, Block: 3})
	res := r.last().(*msg.DiskReadRes)
	if res.Err != msg.OK {
		t.Fatalf("err = %v", res.Err)
	}
	if len(res.Data) != BlockSize || !bytes.Equal(res.Data, make([]byte, BlockSize)) {
		t.Fatal("unwritten block must read as zeros")
	}
}

func TestWriteThenRead(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	r.deliver(&msg.DiskWrite{Client: 1, Req: 1, Block: 5, Data: []byte("hello"), Ver: 42})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.OK {
		t.Fatalf("write err = %v", res.Err)
	}
	r.deliver(&msg.DiskRead{Client: 2, Req: 2, Block: 5})
	res := r.last().(*msg.DiskReadRes)
	if !bytes.Equal(res.Data[:5], []byte("hello")) || res.Ver != 42 {
		t.Fatalf("read back %q ver %d", res.Data[:5], res.Ver)
	}
	if data, ver, ok := r.d.PeekBlock(5); !ok || ver != 42 || !bytes.Equal(data[:5], []byte("hello")) {
		t.Fatal("PeekBlock mismatch")
	}
}

func TestOutOfRange(t *testing.T) {
	r := newRig(t, Config{Blocks: 4}, Observer{})
	r.deliver(&msg.DiskRead{Client: 1, Req: 1, Block: 4})
	if res := r.last().(*msg.DiskReadRes); res.Err != msg.ErrRange {
		t.Fatalf("read err = %v, want ErrRange", res.Err)
	}
	r.deliver(&msg.DiskWrite{Client: 1, Req: 2, Block: 9, Data: nil})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.ErrRange {
		t.Fatalf("write err = %v, want ErrRange", res.Err)
	}
	r.deliver(&msg.DiskWrite{Client: 1, Req: 3, Block: 0, Data: make([]byte, BlockSize+1)})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.ErrRange {
		t.Fatalf("oversized write err = %v, want ErrRange", res.Err)
	}
}

func TestFencingRejectsIndefinitely(t *testing.T) {
	rejected := 0
	r := newRig(t, Config{Blocks: 16}, Observer{
		Rejected: func(d, init msg.NodeID) {
			if init != 1 {
				t.Errorf("rejected wrong initiator %v", init)
			}
			rejected++
		},
	})
	r.deliver(&msg.FenceSet{Admin: 100, Req: 1, Target: 1, On: true})
	if res := r.last().(*msg.FenceRes); res.Err != msg.OK {
		t.Fatalf("fence err = %v", res.Err)
	}
	if !r.d.Fenced(1) {
		t.Fatal("Fenced(1) = false")
	}
	r.deliver(&msg.DiskWrite{Client: 1, Req: 2, Block: 0, Data: []byte("x")})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.ErrFenced {
		t.Fatalf("write err = %v, want ErrFenced", res.Err)
	}
	r.deliver(&msg.DiskRead{Client: 1, Req: 3, Block: 0})
	if res := r.last().(*msg.DiskReadRes); res.Err != msg.ErrFenced {
		t.Fatalf("read err = %v, want ErrFenced", res.Err)
	}
	// Other initiators are unaffected.
	r.deliver(&msg.DiskWrite{Client: 2, Req: 4, Block: 0, Data: []byte("y")})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.OK {
		t.Fatalf("other client write err = %v", res.Err)
	}
	// Unfence restores access.
	r.deliver(&msg.FenceSet{Admin: 100, Req: 5, Target: 1, On: false})
	r.deliver(&msg.DiskWrite{Client: 1, Req: 6, Block: 0, Data: []byte("z")})
	if res := r.last().(*msg.DiskWriteRes); res.Err != msg.OK {
		t.Fatalf("post-unfence write err = %v", res.Err)
	}
	if rejected != 2 {
		t.Fatalf("rejected observer fired %d times, want 2", rejected)
	}
}

func TestObserverCommitServe(t *testing.T) {
	var commits, serves int
	r := newRig(t, Config{Blocks: 16}, Observer{
		Committed: func(d msg.NodeID, block, ver uint64, w msg.NodeID) {
			commits++
			if block != 7 || ver != 3 || w != 1 {
				t.Errorf("commit block=%d ver=%d w=%v", block, ver, w)
			}
		},
		Served: func(d msg.NodeID, block, ver uint64, rd msg.NodeID) {
			serves++
			if ver != 3 || rd != 2 {
				t.Errorf("serve ver=%d rd=%v", ver, rd)
			}
		},
	})
	r.deliver(&msg.DiskWrite{Client: 1, Req: 1, Block: 7, Data: []byte("d"), Ver: 3})
	r.deliver(&msg.DiskRead{Client: 2, Req: 2, Block: 7})
	if commits != 1 || serves != 1 {
		t.Fatalf("commits=%d serves=%d", commits, serves)
	}
}

func TestServiceTimeDelaysReply(t *testing.T) {
	r := newRig(t, Config{Blocks: 16, ServiceTime: time.Millisecond}, Observer{})
	r.d.Deliver(msg.Envelope{Payload: &msg.DiskRead{Client: 1, Req: 1, Block: 0}})
	if len(r.replies) != 0 {
		t.Fatal("reply sent before service time")
	}
	r.s.Run()
	if len(r.replies) != 1 {
		t.Fatal("reply missing after service time")
	}
	if r.s.Now() != sim.Time(time.Millisecond) {
		t.Fatalf("replied at %v, want 1ms", r.s.Now())
	}
}

func TestDiskIgnoresUnknownMessages(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	r.deliver(&msg.KeepAlive{}) // not a SAN message; must be ignored
	if len(r.replies) != 0 {
		t.Fatal("disk replied to non-SAN message")
	}
}

func TestDLockConflictAndExpiry(t *testing.T) {
	r := newRig(t, Config{Blocks: 64}, Observer{})
	ttl := 100 * time.Millisecond
	r.deliver(&msg.DLockAcquire{Client: 1, Req: 1, Start: 0, Count: 8, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.OK {
		t.Fatalf("acquire err = %v", res.Err)
	}
	// Overlapping range by another client: held.
	r.deliver(&msg.DLockAcquire{Client: 2, Req: 2, Start: 4, Count: 8, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.ErrDLockHeld {
		t.Fatalf("conflict err = %v, want ErrDLockHeld", res.Err)
	}
	// Disjoint range: fine.
	r.deliver(&msg.DLockAcquire{Client: 2, Req: 3, Start: 8, Count: 8, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.OK {
		t.Fatalf("disjoint err = %v", res.Err)
	}
	if r.d.DLockCount() != 2 {
		t.Fatalf("dlock count = %d", r.d.DLockCount())
	}
	// After TTL the first lock expires and client 2 can take the range —
	// this is exactly how GFS recovers from failed clients (§5).
	r.s.RunFor(2 * ttl)
	r.deliver(&msg.DLockAcquire{Client: 2, Req: 4, Start: 0, Count: 8, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.OK {
		t.Fatalf("post-expiry err = %v", res.Err)
	}
}

func TestDLockReacquireExtends(t *testing.T) {
	r := newRig(t, Config{Blocks: 64}, Observer{})
	ttl := 100 * time.Millisecond
	r.deliver(&msg.DLockAcquire{Client: 1, Req: 1, Start: 0, Count: 4, TTL: ttl})
	r.s.RunFor(80 * time.Millisecond)
	r.deliver(&msg.DLockAcquire{Client: 1, Req: 2, Start: 0, Count: 4, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.OK {
		t.Fatalf("re-acquire err = %v", res.Err)
	}
	r.s.RunFor(80 * time.Millisecond) // 160ms total; original would have expired
	r.deliver(&msg.DLockAcquire{Client: 2, Req: 3, Start: 0, Count: 4, TTL: ttl})
	if res := r.last().(*msg.DLockRes); res.Err != msg.ErrDLockHeld {
		t.Fatal("extension did not hold")
	}
}

func TestDLockRelease(t *testing.T) {
	r := newRig(t, Config{Blocks: 64}, Observer{})
	r.deliver(&msg.DLockAcquire{Client: 1, Req: 1, Start: 0, Count: 4, TTL: time.Hour})
	r.deliver(&msg.DLockRelease{Client: 1, Req: 2, Start: 0, Count: 4})
	if r.d.DLockCount() != 0 {
		t.Fatalf("dlock count = %d after release", r.d.DLockCount())
	}
	r.deliver(&msg.DLockAcquire{Client: 2, Req: 3, Start: 0, Count: 4, TTL: time.Hour})
	if res := r.last().(*msg.DLockRes); res.Err != msg.OK {
		t.Fatalf("acquire after release err = %v", res.Err)
	}
}

func TestDLockFencedInitiator(t *testing.T) {
	r := newRig(t, Config{Blocks: 64}, Observer{})
	r.deliver(&msg.FenceSet{Admin: 100, Req: 1, Target: 1, On: true})
	r.deliver(&msg.DLockAcquire{Client: 1, Req: 2, Start: 0, Count: 4, TTL: time.Hour})
	if res := r.last().(*msg.DLockRes); res.Err != msg.ErrFenced {
		t.Fatalf("err = %v, want ErrFenced", res.Err)
	}
}

func TestWriteIsCopied(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	buf := []byte("abc")
	r.deliver(&msg.DiskWrite{Client: 1, Req: 1, Block: 0, Data: buf})
	buf[0] = 'Z' // mutate caller's buffer after the write
	data, _, _ := r.d.PeekBlock(0)
	if data[0] != 'a' {
		t.Fatal("disk aliased the writer's buffer")
	}
	// Reads return the media's buffer under a read-only contract: the
	// slice must stay stable (a snapshot) even after the block is
	// rewritten, because a rewrite installs a fresh buffer.
	r.deliver(&msg.DiskRead{Client: 1, Req: 2, Block: 0})
	res := r.last().(*msg.DiskReadRes)
	snapshot := res.Data
	r.deliver(&msg.DiskWrite{Client: 1, Req: 3, Block: 0, Data: []byte("xyz")})
	if snapshot[0] != 'a' {
		t.Fatal("rewriting the block mutated a previously returned read buffer")
	}
	// PeekBlock promises a caller-owned copy.
	data, _, _ = r.d.PeekBlock(0)
	data[0] = 'Q'
	if again, _, _ := r.d.PeekBlock(0); again[0] != 'x' {
		t.Fatal("PeekBlock handed out a shared buffer")
	}
}

func TestServiceQueueSerializes(t *testing.T) {
	r := newRig(t, Config{Blocks: 16, ServiceTime: time.Millisecond}, Observer{})
	// A burst of 5 reads arrives at once: replies must come out one
	// service time apart (single actuator), not all together.
	for i := 0; i < 5; i++ {
		r.d.Deliver(msg.Envelope{Payload: &msg.DiskRead{Client: 1, Req: msg.ReqID(i), Block: 0}})
	}
	r.s.Run()
	if len(r.replies) != 5 {
		t.Fatalf("replies = %d", len(r.replies))
	}
	if want := sim.Time(5 * time.Millisecond); r.s.Now() != want {
		t.Fatalf("burst finished at %v, want %v (serialized)", r.s.Now(), want)
	}
}

// TestDlockPartialSelfOverlapRejected is the regression test for the
// dlock re-acquire bug: any overlapping self-owned range used to count
// as a re-acquire and extend that lock's TTL, leaving the unlocked part
// of the requested range unprotected while the client believed it held
// it. Only the exact (start, count) pair may extend.
func TestDlockPartialSelfOverlapRejected(t *testing.T) {
	r := newRig(t, Config{Blocks: 64}, Observer{})
	acquire := func(req msg.ReqID, client msg.NodeID, start uint64, count uint32) msg.Errno {
		r.deliver(&msg.DLockAcquire{Client: client, Req: req,
			Start: start, Count: count, TTL: time.Minute})
		return r.last().(*msg.DLockRes).Err
	}
	if e := acquire(1, 1, 0, 4); e != msg.OK {
		t.Fatalf("initial acquire: %v", e)
	}
	// Identical range: legitimate TTL extension.
	if e := acquire(2, 1, 0, 4); e != msg.OK {
		t.Fatalf("identical re-acquire: %v", e)
	}
	// Supersets and partial overlaps of a self-owned lock must NOT be
	// treated as re-acquires: the old code extended (0,4) and reported
	// success for (0,8), leaving blocks 4..8 unlocked.
	if e := acquire(3, 1, 0, 8); e != msg.ErrDLockHeld {
		t.Fatalf("superset self-overlap = %v, want ErrDLockHeld", e)
	}
	if e := acquire(4, 1, 2, 4); e != msg.ErrDLockHeld {
		t.Fatalf("partial self-overlap = %v, want ErrDLockHeld", e)
	}
	// A disjoint range is a fresh lock, and other clients still conflict.
	if e := acquire(5, 1, 4, 4); e != msg.OK {
		t.Fatalf("disjoint acquire: %v", e)
	}
	if e := acquire(6, 2, 0, 4); e != msg.ErrDLockHeld {
		t.Fatalf("other-client overlap = %v, want ErrDLockHeld", e)
	}
}

// serviceRig is a rig with a non-zero ServiceTime that records the
// simulated time of every reply, for the queueing tests.
type serviceRig struct {
	s       *sim.Scheduler
	d       *Disk
	replies []msg.Message
	at      []time.Duration
}

func newServiceRig(t *testing.T, st time.Duration) *serviceRig {
	t.Helper()
	r := &serviceRig{s: sim.NewScheduler(1)}
	clock := r.s.NewClock(1, 0)
	epoch := clock.Now()
	r.d = New(9, Config{Blocks: 64, ServiceTime: st}, clock, func(to msg.NodeID, m msg.Message) {
		r.replies = append(r.replies, m)
		r.at = append(r.at, clock.Now().Sub(epoch))
	}, stats.NewRegistry(), Observer{})
	return r
}

// TestServiceQueueFIFO models the single-actuator device: a burst of N
// writes delivered together is serviced one at a time, FIFO, so reply i
// lands at exactly (i+1)·ServiceTime.
func TestServiceQueueFIFO(t *testing.T) {
	const st = time.Millisecond
	r := newServiceRig(t, st)
	const n = 5
	for i := 0; i < n; i++ {
		r.d.Deliver(msg.Envelope{From: 1, To: 9, Payload: &msg.DiskWrite{
			Client: 1, Req: msg.ReqID(i + 1), Block: uint64(i), Data: []byte{byte(i)}}})
	}
	r.s.Run()
	if len(r.replies) != n {
		t.Fatalf("got %d replies, want %d", len(r.replies), n)
	}
	for i, m := range r.replies {
		res := m.(*msg.DiskWriteRes)
		if res.Err != msg.OK {
			t.Fatalf("write %d err = %v", i, res.Err)
		}
		if res.Req != msg.ReqID(i+1) {
			t.Fatalf("reply %d is for req %d: service order is not FIFO", i, res.Req)
		}
		if want := time.Duration(i+1) * st; r.at[i] != want {
			t.Fatalf("reply %d at %v, want %v (N·ServiceTime queueing)", i, r.at[i], want)
		}
	}
}

// TestFenceRejectsQueuedWrites pins down when fencing takes effect: a
// FenceSet is a control operation that bypasses the service queue, so
// writes that were already queued when the fence arrived are rejected at
// execution time — the paper's safety argument does not tolerate a
// fenced client's write sneaking through because it was enqueued first.
func TestFenceRejectsQueuedWrites(t *testing.T) {
	r := newServiceRig(t, time.Millisecond)
	for i := 0; i < 3; i++ {
		r.d.Deliver(msg.Envelope{From: 1, To: 9, Payload: &msg.DiskWrite{
			Client: 1, Req: msg.ReqID(i + 1), Block: uint64(i), Data: []byte("w")}})
	}
	// The fence arrives while all three writes are still queued.
	r.d.Deliver(msg.Envelope{From: 100, To: 9, Payload: &msg.FenceSet{
		Admin: 100, Req: 9, Target: 1, On: true}})
	r.s.Run()
	if len(r.replies) != 4 {
		t.Fatalf("got %d replies, want 4", len(r.replies))
	}
	if res := r.replies[0].(*msg.FenceRes); res.Err != msg.OK {
		t.Fatalf("fence err = %v", res.Err)
	}
	for i := 1; i < 4; i++ {
		res := r.replies[i].(*msg.DiskWriteRes)
		if res.Err != msg.ErrFenced {
			t.Fatalf("queued write %d err = %v, want ErrFenced", res.Req, res.Err)
		}
	}
	if _, _, ok := r.d.PeekBlock(0); ok {
		t.Fatal("fenced client's queued write reached the media")
	}
}
