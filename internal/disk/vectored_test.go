package disk

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/msg"
	"repro/internal/sim"
)

func writeVOf(client msg.NodeID, req msg.ReqID, blocks ...uint64) *msg.DiskWriteV {
	m := &msg.DiskWriteV{Client: client, Req: req, Data: make([]byte, len(blocks)*BlockSize)}
	for i, b := range blocks {
		m.Blocks = append(m.Blocks, msg.BlockVec{Block: b, Ver: 100 + b})
		copy(m.Data[i*BlockSize:], bytes.Repeat([]byte{byte(b) + 1}, BlockSize))
	}
	return m
}

func TestWriteVThenReadV(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	r.deliver(writeVOf(1, 1, 3, 7, 11))
	res := r.last().(*msg.DiskWriteVRes)
	if res.Err != msg.OK {
		t.Fatalf("writev err = %v (%v)", res.Err, res.Errs)
	}
	for i, e := range res.Errs {
		if e != msg.OK {
			t.Fatalf("block %d errno = %v", i, e)
		}
	}
	// ReadV the batch back plus one never-written block.
	r.deliver(&msg.DiskReadV{Client: 2, Req: 2, Blocks: []uint64{3, 7, 11, 5}})
	rv := r.last().(*msg.DiskReadVRes)
	if rv.Err != msg.OK {
		t.Fatalf("readv err = %v (%v)", rv.Err, rv.Errs)
	}
	for i, b := range []uint64{3, 7, 11} {
		slot := rv.Data[i*BlockSize : (i+1)*BlockSize]
		if !bytes.Equal(slot, bytes.Repeat([]byte{byte(b) + 1}, BlockSize)) {
			t.Fatalf("slot %d contents wrong", i)
		}
		if rv.Vers[i] != 100+b {
			t.Fatalf("slot %d ver = %d", i, rv.Vers[i])
		}
	}
	if !bytes.Equal(rv.Data[3*BlockSize:], make([]byte, BlockSize)) || rv.Vers[3] != 0 {
		t.Fatal("unwritten slot must be zeros with ver 0")
	}
}

// TestWriteVSingleServiceSlot is the actuator contract the tentpole is
// built on: a batch of N blocks occupies ONE service slot, where N scalar
// writes pay N slots.
func TestWriteVSingleServiceSlot(t *testing.T) {
	r := newRig(t, Config{Blocks: 64, ServiceTime: time.Millisecond}, Observer{})
	r.d.Deliver(msg.Envelope{From: 1, To: 9, Payload: writeVOf(1, 1, 0, 1, 2, 3, 4, 5, 6, 7)})
	r.s.Run()
	if len(r.replies) != 1 {
		t.Fatalf("replies = %d", len(r.replies))
	}
	if r.s.Now() != sim.Time(time.Millisecond) {
		t.Fatalf("batch of 8 took %v, want 1·ServiceTime", r.s.Now())
	}
	if res := r.last().(*msg.DiskWriteVRes); res.Err != msg.OK {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestWriteVFencedClient(t *testing.T) {
	rejected := 0
	r := newRig(t, Config{Blocks: 16}, Observer{
		Rejected: func(d, init msg.NodeID) { rejected++ },
	})
	r.deliver(&msg.FenceSet{Admin: 100, Req: 1, Target: 1, On: true})
	r.deliver(writeVOf(1, 2, 0, 1))
	res := r.last().(*msg.DiskWriteVRes)
	if res.Err != msg.ErrFenced {
		t.Fatalf("err = %v, want ErrFenced", res.Err)
	}
	for i, e := range res.Errs {
		if e != msg.ErrFenced {
			t.Fatalf("block %d errno = %v, want ErrFenced", i, e)
		}
	}
	// One fence judgment for the whole batch, not one per block.
	if rejected != 1 {
		t.Fatalf("rejected observer fired %d times, want 1", rejected)
	}
	if _, _, ok := r.d.PeekBlock(0); ok {
		t.Fatal("fenced batch reached the media")
	}
}

func TestWriteVPartialRange(t *testing.T) {
	commits := 0
	r := newRig(t, Config{Blocks: 4}, Observer{
		Committed: func(d msg.NodeID, block, ver uint64, w msg.NodeID) { commits++ },
	})
	r.deliver(writeVOf(1, 1, 0, 99, 2)) // middle block beyond capacity
	res := r.last().(*msg.DiskWriteVRes)
	if res.Err != msg.ErrRange {
		t.Fatalf("aggregate err = %v, want ErrRange (first failure)", res.Err)
	}
	if res.Errs[0] != msg.OK || res.Errs[1] != msg.ErrRange || res.Errs[2] != msg.OK {
		t.Fatalf("per-block errnos = %v", res.Errs)
	}
	if commits != 2 {
		t.Fatalf("commits = %d, want 2", commits)
	}
	if _, _, ok := r.d.PeekBlock(0); !ok {
		t.Fatal("valid block 0 not committed")
	}
	if _, _, ok := r.d.PeekBlock(2); !ok {
		t.Fatal("valid block 2 not committed")
	}
}

func TestWriteVBadPayloadLength(t *testing.T) {
	r := newRig(t, Config{Blocks: 16}, Observer{})
	m := writeVOf(1, 1, 0, 1)
	m.Data = m.Data[:BlockSize] // payload shorter than the vector demands
	r.deliver(m)
	res := r.last().(*msg.DiskWriteVRes)
	if res.Err != msg.ErrRange || res.Errs[0] != msg.ErrRange || res.Errs[1] != msg.ErrRange {
		t.Fatalf("err=%v errs=%v, want all ErrRange", res.Err, res.Errs)
	}
}

// tornMedia fails WriteV for one chosen block with a torn-block error,
// modelling a media whose group commit leaves one slot damaged.
type tornMedia struct {
	blockstore.Media
	tornBlock uint64
}

func (m *tornMedia) WriteV(batch []blockstore.BlockWrite) []error {
	errs := m.Media.WriteV(batch)
	for i, w := range batch {
		if w.Block == m.tornBlock {
			errs[i] = fmt.Errorf("slot damaged: %w", blockstore.ErrTorn)
		}
	}
	return errs
}

// TestWriteVPartialTornDegradesPerBlock: one failed slot inside a batch
// surfaces as that block's errno (ErrTorn) while its neighbours commit —
// the partial-batch degradation the protocol change promises.
func TestWriteVPartialTornDegradesPerBlock(t *testing.T) {
	torn := 0
	r := newRig(t, Config{Blocks: 16}, Observer{
		Torn: func(d msg.NodeID, block uint64) {
			torn++
			if block != 1 {
				t.Errorf("torn observer got block %d", block)
			}
		},
	})
	r.d.media = &tornMedia{Media: r.d.media, tornBlock: 1}
	r.deliver(writeVOf(1, 1, 0, 1, 2))
	res := r.last().(*msg.DiskWriteVRes)
	if res.Err != msg.ErrTorn {
		t.Fatalf("aggregate err = %v, want ErrTorn", res.Err)
	}
	if res.Errs[0] != msg.OK || res.Errs[1] != msg.ErrTorn || res.Errs[2] != msg.OK {
		t.Fatalf("per-block errnos = %v", res.Errs)
	}
	if torn != 1 {
		t.Fatalf("torn observer fired %d times", torn)
	}
}

func TestReadVFencedAndRange(t *testing.T) {
	r := newRig(t, Config{Blocks: 4}, Observer{})
	r.deliver(&msg.DiskReadV{Client: 1, Req: 1, Blocks: []uint64{0, 9}})
	res := r.last().(*msg.DiskReadVRes)
	if res.Err != msg.ErrRange || res.Errs[0] != msg.OK || res.Errs[1] != msg.ErrRange {
		t.Fatalf("err=%v errs=%v", res.Err, res.Errs)
	}
	r.deliver(&msg.FenceSet{Admin: 100, Req: 2, Target: 1, On: true})
	r.deliver(&msg.DiskReadV{Client: 1, Req: 3, Blocks: []uint64{0}})
	res = r.last().(*msg.DiskReadVRes)
	if res.Err != msg.ErrFenced || res.Errs[0] != msg.ErrFenced {
		t.Fatalf("fenced readv: err=%v errs=%v", res.Err, res.Errs)
	}
}
