package rpcnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/trace"
)

// The replica chaos harness: three real server processes negotiate the
// authority lease over TCP, the active one is SIGKILLed mid-traffic, and
// the takeover is judged from the JSONL traces the processes leave
// behind — a peer must hold the lease within the bounded window, no
// acknowledged write may be lost, no client is fenced twice, and
// Theorem 3.1 holds when the steal fires on a different replica than the
// one the victim's lease was minted against. Each replica runs as a
// child process (this test binary re-executed with
// TANK_REPLICA_HELPER=1) so the kill is a genuine process death.

// repLeaseTerm is the authority-lease term the harness runs with: short
// enough to keep the test fast, long enough to dwarf loopback RTTs.
const repLeaseTerm = time.Second

// liveReplicaCore returns the protocol timing both the parent and the
// helper processes must agree on.
func liveReplicaCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tau = 1500 * time.Millisecond
	cfg.RetryInterval = 100 * time.Millisecond
	return cfg
}

// openRetry and readRetry tolerate transient ErrStale around the
// takeover: mid-revival a client's call can race its own
// re-registration, and a demand against a holder that is itself still
// re-asserting fails retryably. ErrStale is the protocol's
// "retry later" errno — the app-level contract is retry, so the
// harness retries, on a deadline.
func (lc *liveCluster) openRetry(t *testing.T, i int, path string, write, create bool) msg.Handle {
	t.Helper()
	cn := lc.clients[i]
	deadline := time.Now().Add(15 * time.Second)
	for {
		type res struct {
			h     msg.Handle
			errno msg.Errno
		}
		ch := make(chan res, 1)
		cn.Do(func() {
			cn.Client.Open(path, write, create, func(h msg.Handle, _ msg.Attr, e msg.Errno) {
				ch <- res{h, e}
			})
		})
		select {
		case r := <-ch:
			if r.errno == msg.OK {
				return r.h
			}
			if r.errno != msg.ErrStale || time.Now().After(deadline) {
				t.Fatalf("open %s: %v", path, r.errno)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("open %s timed out", path)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (lc *liveCluster) readRetry(t *testing.T, i int, h msg.Handle, idx uint64) []byte {
	t.Helper()
	cn := lc.clients[i]
	deadline := time.Now().Add(15 * time.Second)
	for {
		type res struct {
			data  []byte
			errno msg.Errno
		}
		ch := make(chan res, 1)
		cn.Do(func() { cn.Client.Read(h, idx, func(d []byte, e msg.Errno) { ch <- res{d, e} }) })
		select {
		case r := <-ch:
			if r.errno == msg.OK {
				return r.data
			}
			if r.errno != msg.ErrStale || time.Now().After(deadline) {
				t.Fatalf("read: %v", r.errno)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("read timed out")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (lc *liveCluster) writeRetry(t *testing.T, i int, h msg.Handle, idx uint64, data []byte) {
	t.Helper()
	cn := lc.clients[i]
	deadline := time.Now().Add(15 * time.Second)
	for {
		ch := make(chan msg.Errno, 1)
		cn.Do(func() { cn.Client.Write(h, idx, data, func(e msg.Errno) { ch <- e }) })
		select {
		case e := <-ch:
			if e == msg.OK {
				return
			}
			if e != msg.ErrStale || time.Now().After(deadline) {
				t.Fatalf("write: %v", e)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("write timed out")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestReplicaServerHelper is not a test: it is one replica-server child
// process. Gated on TANK_REPLICA_HELPER so a normal `go test` run
// passes through.
func TestReplicaServerHelper(t *testing.T) {
	if os.Getenv("TANK_REPLICA_HELPER") != "1" {
		return
	}
	var topo Topology
	if err := json.Unmarshal([]byte(os.Getenv("TANK_TOPO")), &topo); err != nil {
		fmt.Printf("HELPER-ERR topo: %v\n", err)
		os.Exit(1)
	}
	selfInt, err := strconv.Atoi(os.Getenv("TANK_SELF"))
	if err != nil {
		fmt.Printf("HELPER-ERR self: %v\n", err)
		os.Exit(1)
	}
	self := msg.NodeID(selfInt)
	dir := os.Getenv("TANK_DIR")
	tf, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("trace-%d.jsonl", self)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Printf("HELPER-ERR trace: %v\n", err)
		os.Exit(1)
	}
	caps := map[msg.NodeID]uint64{}
	for id := range topo.Disks {
		caps[id] = 1 << 12
	}
	topo.Server = self
	topo.ServerAddr = topo.Servers[self]
	sn, err := StartServerNode(NodeSpec{ID: self, Topo: topo}, server.Config{
		Core:  liveReplicaCore(),
		Disks: caps,
		// Diskless negotiation, durable namespace: every replica loads the
		// shared snapshot on activation and the active persists it before
		// each reply.
		Replica:     &replica.Config{LeaseTerm: repLeaseTerm},
		MetaPersist: filepath.Join(dir, "meta.json"),
	}, WithTracer(trace.New(trace.NewJSONL(tf))))
	if err != nil {
		fmt.Printf("HELPER-ERR start: %v\n", err)
		os.Exit(1)
	}
	// Trace timestamps under the live transport are ns since the node's
	// clock was created (a moment ago); the anchor lets the parent rebase
	// every process's events onto one shared wall clock.
	os.WriteFile(filepath.Join(dir, fmt.Sprintf("base-%d", self)),
		[]byte(strconv.FormatInt(time.Now().UnixNano(), 10)), 0o644)
	// The parent parses this line; the listener above is already up.
	fmt.Printf("ADDR %v\n", sn.Addr)
	select {}
}

// freeAddr reserves an ephemeral loopback port and releases it: replica
// addresses must be in the shared topology before any process starts.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startReplicaHelper launches replica id as a child process and waits
// for its listener.
func startReplicaHelper(t *testing.T, dir string, id msg.NodeID, topo Topology) *exec.Cmd {
	t.Helper()
	tj, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestReplicaServerHelper$")
	cmd.Env = append(os.Environ(),
		"TANK_REPLICA_HELPER=1",
		"TANK_SELF="+strconv.Itoa(int(id)),
		"TANK_TOPO="+string(tj),
		"TANK_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	ef, err := os.Create(filepath.Join(dir, fmt.Sprintf("stderr-%d.log", id)))
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = ef
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// One goroutine owns Wait (the test may SIGKILL the child long before
	// cleanup); cleanup must not return until the child is truly gone, or
	// its trace writes race the TempDir removal.
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-exited
	})
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "HELPER-ERR") {
			t.Fatalf("replica %v helper: %s", id, line)
		}
		if strings.HasPrefix(line, "ADDR ") {
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd
		}
	}
	t.Fatalf("replica %v helper exited without printing ADDR", id)
	return nil
}

// loadBase reads a process's wall-clock anchor (ns since the Unix
// epoch, written at node startup), or 0 if the file is not there yet.
func loadBase(dir string, id msg.NodeID) int64 {
	b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("base-%d", id)))
	if err != nil {
		return 0
	}
	n, _ := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	return n
}

// rebase shifts a process's event timestamps from "ns since its own
// start" onto the shared wall clock "ns since epoch0". TC1 is in the
// same clock domain but zero means unset.
func rebase(evs []trace.Event, baseNS, epoch0 int64) []trace.Event {
	d := time.Duration(baseNS - epoch0)
	for i := range evs {
		evs[i].Time = evs[i].Time.Add(d)
		if evs[i].TC1 != 0 {
			evs[i].TC1 = evs[i].TC1.Add(d)
		}
	}
	return evs
}

// replicaTraces merges every per-process JSONL trace in dir, rebased
// onto the wall clock so cross-process ordering is meaningful.
func replicaTraces(t *testing.T, dir string, group []msg.NodeID, epoch0 int64) []trace.Event {
	t.Helper()
	var evs []trace.Event
	for _, id := range group {
		path := filepath.Join(dir, fmt.Sprintf("trace-%d.jsonl", id))
		if _, err := os.Stat(path); err != nil {
			continue
		}
		evs = append(evs, rebase(readTrace(t, path), loadBase(dir, id), epoch0)...)
	}
	return evs
}

// findActiveReplica polls the children's trace streams until exactly one
// replica shows authority-lease grants, and returns it.
func findActiveReplica(t *testing.T, dir string, group []msg.NodeID) msg.NodeID {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		holders := map[msg.NodeID]bool{}
		for _, e := range replicaTraces(t, dir, group, 0) {
			switch e.Type {
			case trace.EvReplicaLeaseGranted:
				holders[e.Node] = true
			case trace.EvReplicaStepdown:
				delete(holders, e.Node)
			}
		}
		if len(holders) == 1 {
			for id := range holders {
				return id
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("no single active replica emerged in the trace streams")
	return msg.None
}

func TestLiveReplicaFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness")
	}
	dir := t.TempDir()
	cfg := liveReplicaCore()

	// The SAN survives in-parent: the harness kills metadata servers, and
	// the paper's design keeps disks independent of the authority.
	const diskID = msg.NodeID(5000)
	dtopo := Topology{Disks: map[msg.NodeID]string{diskID: Loopback()}}
	dn, err := StartDiskNode(NodeSpec{ID: diskID, Topo: dtopo}, disk.Config{Blocks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dn.Close)

	group := []msg.NodeID{1, 101, 201}
	topo := Topology{
		Server:        1,
		Servers:       map[msg.NodeID]string{},
		ReplicaGroups: map[msg.NodeID][]msg.NodeID{1: group},
		Disks:         map[msg.NodeID]string{diskID: dn.Addr.String()},
	}
	for _, id := range group {
		topo.Servers[id] = freeAddr(t)
	}
	topo.ServerAddr = topo.Servers[1]
	helpers := map[msg.NodeID]*exec.Cmd{}
	for _, id := range group {
		helpers[id] = startReplicaHelper(t, dir, id, topo)
	}

	// The parent's two clients share one JSONL stream so their events
	// merge with the children's by wall-clock time.
	ctf, err := os.OpenFile(filepath.Join(dir, "trace-clients.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.NewJSONL(ctf))
	lc := &liveCluster{}
	clientBase := map[msg.NodeID]int64{}
	for i := 0; i < 2; i++ {
		cn, err := StartClientNode(NodeSpec{ID: msg.NodeID(10 + i), Topo: topo},
			client.Config{Core: cfg}, WithTracer(tracer))
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		clientBase[msg.NodeID(10+i)] = time.Now().UnixNano()
		t.Cleanup(cn.Close)
		lc.clients = append(lc.clients, cn)
	}
	lc.start(t, 0)
	lc.start(t, 1)

	h0 := lc.open(t, 0, "/rep.txt", true, true)
	payload := []byte("acked-before-kill")
	lc.write(t, 0, h0, 0, payload)
	lc.sync(t, 0) // acknowledged and on the SAN

	// SIGKILL the active mid-traffic.
	active := findActiveReplica(t, dir, group)
	killedAt := time.Now()
	helpers[active].Process.Kill()

	// A successor must SERVE within the bounded window: the acceptors
	// forget the dead holder's lease after term·(1+ε), negotiation takes
	// a few retry intervals, and the successor's grace period defers new
	// lock grants by one StealDelay. The probe open completes only once
	// all three have happened.
	bound := cfg.Bound.Stretch(repLeaseTerm) + cfg.Bound.Stretch(cfg.Tau) + 3*time.Second
	probeOK := false
	for time.Since(killedAt) < bound {
		ch := make(chan msg.Errno, 1)
		cn := lc.clients[1]
		cn.Do(func() {
			cn.Client.Open("/probe.txt", true, true, func(_ msg.Handle, _ msg.Attr, e msg.Errno) {
				ch <- e
			})
		})
		var e msg.Errno
		select {
		case e = <-ch:
		case <-time.After(bound - time.Since(killedAt)):
			e = msg.ErrStale
		}
		if e == msg.OK {
			probeOK = true
			break
		}
		// ErrStale mid-takeover: the client's lease lapsed and it is
		// re-registering with the successor. Retry, still on the clock.
		time.Sleep(100 * time.Millisecond)
	}
	if !probeOK {
		for _, e := range replicaTraces(t, dir, group, 0) {
			if e.Type >= trace.EvReplicaBallotOpen && e.Type <= trace.EvReplicaTakeover {
				t.Logf("replica ev: %s", e)
			}
		}
		t.Fatalf("no successor served within the takeover bound %v", bound)
	}

	// No acknowledged write lost: the pre-kill payload reads back through
	// the successor's recovered namespace and the SAN.
	h1 := lc.openRetry(t, 1, "/rep.txt", false, false)
	if got := lc.readRetry(t, 1, h1, 0); !bytes.HasPrefix(got, payload) {
		t.Fatalf("acknowledged write lost across takeover: %q", got[:24])
	}

	// Theorem 3.1 across the takeover boundary on live TCP: client 0
	// dirties the file under the SUCCESSOR's regime (its lock came back
	// through reassertion), then loses the control network for good.
	lc.writeRetry(t, 0, h0, 1, []byte("dirty-after-takeover"))
	lc.clients[0].Ctrl.Close()

	// The survivor demands the file; its open completes only after the
	// successor's τ(1+ε) steal, and the read must observe the isolated
	// client's phase-4 flush.
	h2 := lc.openRetry(t, 1, "/rep.txt", true, false)
	if got := lc.readRetry(t, 1, h2, 1); !bytes.HasPrefix(got, []byte("dirty-after-takeover")) {
		t.Fatalf("isolated client's flush lost: %q", got[:24])
	}

	// Judge the run from the traces alone, on one shared wall clock:
	// every process recorded its anchor, and events are rebased to ns
	// since the earliest one.
	epoch0 := int64(0)
	for _, id := range group {
		if b := loadBase(dir, id); b != 0 && (epoch0 == 0 || b < epoch0) {
			epoch0 = b
		}
	}
	for _, b := range clientBase {
		if epoch0 == 0 || b < epoch0 {
			epoch0 = b
		}
	}
	evs := replicaTraces(t, dir, group, epoch0)
	clientEvs := readTrace(t, filepath.Join(dir, "trace-clients.jsonl"))
	for i := range clientEvs {
		d := time.Duration(clientBase[clientEvs[i].Node] - epoch0)
		clientEvs[i].Time = clientEvs[i].Time.Add(d)
		if clientEvs[i].TC1 != 0 {
			clientEvs[i].TC1 = clientEvs[i].TC1.Add(d)
		}
	}
	isolated := msg.NodeID(10)

	// Exactly one takeover, at a surviving replica, in grace mode: the
	// persisted snapshot carried a nonzero epoch across processes.
	var tk *trace.Event
	for i, e := range evs {
		// "grace-end" rides on the same event type but marks the window
		// closing, not a second takeover.
		if e.Type == trace.EvReplicaTakeover && e.Node != active && e.Note != "grace-end" {
			if tk != nil && tk.Node != e.Node {
				t.Fatalf("takeovers at two different survivors: %v and %v", tk.Node, e.Node)
			}
			tk = &evs[i]
		}
	}
	if tk == nil {
		t.Fatal("no takeover event at any survivor")
	}
	succ := tk.Node
	if tk.Note != "grace" {
		t.Fatalf("takeover note = %q, want \"grace\" (snapshot epoch was nonzero)", tk.Note)
	}

	// Authority-lease disjointness across the kill, from the holders' own
	// records: the successor's first grant comes no earlier than the dead
	// holder's lease end (its last grant's t0 + term).
	var killedLast, succFirst *trace.Event
	for i, e := range evs {
		if e.Type != trace.EvReplicaLeaseGranted {
			continue
		}
		switch e.Node {
		case active:
			killedLast = &evs[i]
		case succ:
			if succFirst == nil {
				succFirst = &evs[i]
			}
		}
	}
	if killedLast == nil || succFirst == nil {
		t.Fatalf("missing lease grants: killed=%v succ=%v", killedLast, succFirst)
	}
	if succFirst.Time.Before(killedLast.TC1.Add(repLeaseTerm)) {
		t.Fatalf("successor granted at %v, inside the dead holder's lease [%v, %v)",
			succFirst.Time, killedLast.TC1, killedLast.TC1.Add(repLeaseTerm))
	}

	// The steal fired exactly once, at the successor — the isolated
	// client was fenced once, not doubly.
	steals, fences := 0, 0
	var steal *trace.Event
	for i, e := range evs {
		if e.Peer != isolated {
			continue
		}
		switch {
		case e.Type == trace.EvStealFired:
			steals++
			steal = &evs[i]
		case e.Type == trace.EvFence && e.On:
			fences++
		}
	}
	if steals != 1 || steal.Node != succ {
		t.Fatalf("steals at client %v: %d (last at %v), want exactly 1 at the successor %v",
			isolated, steals, steal, succ)
	}
	if fences != 1 {
		t.Fatalf("client %v fenced %d times, want exactly once", isolated, fences)
	}

	// Theorem 3.1 across the boundary, by wall-clock: the client's own
	// expiry strictly precedes the successor's steal, and the phase-4
	// flush completed (no "dirty" expiry).
	var expire *trace.Event
	for i, e := range clientEvs {
		if e.Node == isolated && e.Type == trace.EvExpire {
			expire = &clientEvs[i]
			break
		}
	}
	if expire == nil {
		t.Fatal("isolated client never expired its lease")
	}
	if expire.Note == "dirty" {
		t.Fatal("isolated client expired with the phase-4 flush incomplete")
	}
	if !expire.Time.Before(steal.Time) {
		t.Fatalf("Theorem 3.1 across takeover: expiry at %v, steal at %v", expire.Time, steal.Time)
	}
}
