package rpcnet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Executor is a node's serial event loop: every protocol callback —
// message delivery from either network, and every timer — runs here, so
// node state needs no further locking, exactly as in the simulator. The
// queue is unbounded: protocol callbacks must never be dropped while the
// node is alive, and never block their producers.
type Executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

// NewExecutor creates an executor; call Run (usually on a goroutine).
func NewExecutor() *Executor {
	e := &Executor{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Submit enqueues fn; submissions after Close are dropped.
func (e *Executor) Submit(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue = append(e.queue, fn)
	e.cond.Signal()
}

// Run drains tasks until Close.
func (e *Executor) Run() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		fn := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		fn()
	}
}

// Close stops the executor after the queued tasks drain.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// UseExecutor reroutes this transport's deliveries and timers through a
// shared executor, for nodes attached to more than one network.
func (t *Transport) UseExecutor(e *Executor) {
	t.submitFn = e.Submit
	t.clock.SetExec(e.Submit)
}

// Topology is the address book of a live installation: who the metadata
// server is, where it listens, and where each SAN disk listens. One
// Topology value describes the whole installation and is shared by every
// NodeSpec, replacing the per-call positional address arguments.
type Topology struct {
	// Server is the metadata server's node ID.
	Server msg.NodeID
	// ServerAddr is the control-network address the server listens on and
	// clients dial ("host:port"; port 0 picks an ephemeral port).
	ServerAddr string
	// Servers, when set, is the full address book of a sharded
	// installation: every lease authority's control address, including
	// this installation's own. Server nodes dial it for cross-shard
	// handoffs, and StartShardClientNode runs one protocol instance per
	// entry. Nil for a single-authority installation. When ReplicaGroups
	// is set, Servers also carries every replica member's address.
	Servers map[msg.NodeID]string
	// ReplicaGroups, when set, replicates lease authorities: each key is
	// a group's primary ID — the authority identity clients route and
	// hash placement by — and the value lists every member, primary
	// included, in an order all members agree on. StartServerNode gives
	// any node whose ID appears in a group the PaxosLease negotiator role
	// (see internal/replica); clients dial the whole group and follow
	// ErrNotActive redirects to whichever member holds the authority
	// lease. Every member needs an address in Servers.
	ReplicaGroups map[msg.NodeID][]msg.NodeID
	// Disks maps each disk's node ID to its SAN listen address.
	Disks map[msg.NodeID]string
}

// GroupOf returns the replica group id belongs to (nil if id is not a
// member of any group).
func (t Topology) GroupOf(id msg.NodeID) []msg.NodeID {
	for _, members := range t.ReplicaGroups {
		for _, m := range members {
			if m == id {
				return members
			}
		}
	}
	return nil
}

// primaryOf maps a group member to its group's primary ID; IDs outside
// every group map to themselves.
func (t Topology) primaryOf(id msg.NodeID) msg.NodeID {
	for p, members := range t.ReplicaGroups {
		for _, m := range members {
			if m == id {
				return p
			}
		}
	}
	return id
}

// ServerIDs returns the sharded address book's authority IDs in sorted
// order — the canonical shard enumeration every node must agree on for
// hash placement to be consistent installation-wide. Replica members
// are folded into their group's primary: replication multiplies
// servers, not shards.
func (t Topology) ServerIDs() []msg.NodeID {
	ids := make([]msg.NodeID, 0, len(t.Servers))
	for id := range t.Servers {
		if t.primaryOf(id) == id {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodeSpec identifies one node within a topology.
type NodeSpec struct {
	// ID is this node's ID. For a disk node, Topo.Disks[ID] is its listen
	// address.
	ID msg.NodeID
	// Topo is the installation's shared address book.
	Topo Topology
}

// nodeOptions collects the cross-cutting facilities a node is started
// with; all have working defaults.
type nodeOptions struct {
	tracer     *trace.Tracer
	logf       func(format string, args ...any)
	clock      sim.Clock
	reg        *stats.Registry
	ctrlFaults *faultnet.Faults
	sanFaults  *faultnet.Faults
	media      blockstore.Media
	codec      wire.ID
	codecSet   bool
}

// Option customizes a node started by StartServerNode, StartClientNode,
// or StartDiskNode.
type Option func(*nodeOptions)

// WithTracer attaches a trace bus: the node's protocol components emit
// lease-lifecycle events and its transports emit EvTransport events.
// Sharing one Tracer across nodes in the same process yields a single
// totally-ordered event stream (see trace.Tracer).
func WithTracer(tr *trace.Tracer) Option {
	return func(o *nodeOptions) { o.tracer = tr }
}

// WithLogf installs a debug logger on the node's transports.
func WithLogf(f func(format string, args ...any)) Option {
	return func(o *nodeOptions) { o.logf = f }
}

// WithClock overrides the clock driving the node's protocol state
// machines (default: the control transport's wall clock, timers on the
// node's executor). The caller is responsible for the override firing
// its timers on the node's executor.
func WithClock(c sim.Clock) Option {
	return func(o *nodeOptions) { o.clock = c }
}

// WithRegistry supplies the metrics registry the node's instruments live
// in (default: a fresh private registry).
func WithRegistry(reg *stats.Registry) Option {
	return func(o *nodeOptions) { o.reg = reg }
}

// WithFaults installs fault-injection plans on the node's transports:
// ctrl on the control network, san on the SAN (either may be nil for a
// healthy fabric). Sharing one plan across every node of an in-process
// installation reproduces the simulator's network-wide failure controls
// — Partition, Isolate, per-link loss and latency — on real TCP, with
// drops emitted through the trace bus under the same DropReason
// taxonomy the simulator uses.
func WithFaults(ctrl, san *faultnet.Faults) Option {
	return func(o *nodeOptions) {
		o.ctrlFaults = ctrl
		o.sanFaults = san
	}
}

// WithMedia backs a disk node with the given storage (see
// internal/blockstore). The default is a fresh in-memory store that dies
// with the process; a file-backed store opened with blockstore.Open
// makes the node durable — acknowledged writes, version stamps, and the
// fence table survive a crash-restart from the same directory. Ignored
// by server and client nodes.
func WithMedia(m blockstore.Media) Option {
	return func(o *nodeOptions) { o.media = m }
}

// WithCodec selects the wire encoding the node's transports announce
// when dialing (default wire.Binary; wire.Gob is the fallback). The
// acceptor side of every connection adopts the dialer's choice, so nodes
// configured differently still interoperate.
func WithCodec(c wire.ID) Option {
	return func(o *nodeOptions) {
		o.codec = c
		o.codecSet = true
	}
}

// WithWireCodec is WithCodec taking the codec by name ("binary",
// "gob") — the form the tankd/tankcli -codec flags pass straight
// through. Unknown names error before any node starts.
func WithWireCodec(name string) (Option, error) {
	id, err := wire.ParseID(name)
	if err != nil {
		return nil, err
	}
	return WithCodec(id), nil
}

func buildOptions(opts []Option) nodeOptions {
	var o nodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.reg == nil {
		o.reg = stats.NewRegistry()
	}
	return o
}

// applyTransport installs the node-level tracer/logger on a transport.
func (o nodeOptions) applyTransport(t *Transport) {
	if o.tracer != nil {
		t.SetTracer(o.tracer)
	}
	if o.logf != nil {
		t.SetLogf(o.logf)
	}
	if o.clock != nil {
		t.SetClock(o.clock)
	}
	if o.codecSet {
		t.SetCodec(o.codec)
	}
}

// applyControl configures a control-network transport; applySAN a SAN
// one (they differ only in which fault plan applies).
func (o nodeOptions) applyControl(t *Transport) {
	o.applyTransport(t)
	if o.ctrlFaults != nil {
		t.SetFaults(o.ctrlFaults)
	}
}

func (o nodeOptions) applySAN(t *Transport) {
	o.applyTransport(t)
	if o.sanFaults != nil {
		t.SetFaults(o.sanFaults)
	}
}

// ServerNode is a live metadata server: a control listener, a SAN dialer
// for fencing/function-shipping, and the server state machine on one
// executor.
type ServerNode struct {
	Srv  *server.Server
	Ctrl *Transport
	SAN  *Transport
	Exec *Executor
	Addr net.Addr
	Reg  *stats.Registry
}

// StartServerNode launches the topology's server: it listens for clients
// on Topo.ServerAddr and dials the disks in Topo.Disks. A node whose ID
// appears in Topo.ReplicaGroups additionally runs the PaxosLease
// negotiator — there is no separate replica entry point; passive,
// candidate, and active are runtime roles of the same server.
func StartServerNode(spec NodeSpec, cfg server.Config, opts ...Option) (*ServerNode, error) {
	o := buildOptions(opts)
	if g := spec.Topo.GroupOf(spec.ID); g != nil {
		// The topology decides WHO replicates; cfg.Replica (when given)
		// only tunes HOW. Unset knobs inherit the protocol defaults.
		rc := replica.Config{}
		if cfg.Replica != nil {
			rc = *cfg.Replica
		}
		rc.Self = spec.ID
		if rc.Group == nil {
			rc.Group = g
		}
		if rc.LeaseTerm == 0 {
			rc.LeaseTerm = replica.DefaultLeaseTerm
		}
		if rc.RetryInterval == 0 {
			rc.RetryInterval = cfg.Core.RetryInterval
		}
		if rc.Bound.Eps == 0 {
			rc.Bound = cfg.Core.Bound
		}
		cfg.Replica = &rc
	}
	n := &ServerNode{Exec: NewExecutor(), Reg: o.reg}
	// Peer authorities (if any) are dialable for cross-shard handoffs;
	// client connections are still learned from inbound Hello frames.
	n.Ctrl = New(spec.ID, spec.Topo.Servers, func(env msg.Envelope) { n.Srv.Deliver(env) })
	n.SAN = New(spec.ID, spec.Topo.Disks, func(env msg.Envelope) { n.Srv.DeliverSAN(env) })
	n.Ctrl.UseExecutor(n.Exec)
	n.SAN.UseExecutor(n.Exec)
	o.applyControl(n.Ctrl)
	o.applySAN(n.SAN)
	clock := o.clock
	if clock == nil {
		clock = n.Ctrl.Clock()
	}
	n.Srv = server.New(spec.ID, cfg, clock, n.Ctrl.Send, n.SAN.Send, n.Reg, o.tracer)
	addr, err := n.Ctrl.Listen(spec.Topo.ServerAddr)
	if err != nil {
		return nil, err
	}
	n.Addr = addr
	go n.Exec.Run()
	return n, nil
}

// Close shuts the node down.
func (n *ServerNode) Close() {
	n.Ctrl.Close()
	n.SAN.Close()
	n.Exec.Close()
}

// DiskNode is a live SAN block device.
type DiskNode struct {
	Disk *disk.Disk
	SAN  *Transport
	Exec *Executor
	Addr net.Addr
}

// StartDiskNode launches disk spec.ID listening on its Topo.Disks
// address.
func StartDiskNode(spec NodeSpec, cfg disk.Config, opts ...Option) (*DiskNode, error) {
	o := buildOptions(opts)
	n := &DiskNode{Exec: NewExecutor()}
	n.SAN = New(spec.ID, nil, func(env msg.Envelope) { n.Disk.Deliver(env) })
	n.SAN.UseExecutor(n.Exec)
	o.applySAN(n.SAN)
	clock := o.clock
	if clock == nil {
		clock = n.SAN.Clock()
	}
	n.Disk = disk.New(spec.ID, cfg, clock, n.SAN.Send, o.reg, disk.Observer{},
		disk.WithMedia(o.media), disk.WithTracer(o.tracer))
	addr, err := n.SAN.Listen(spec.Topo.Disks[spec.ID])
	if err != nil {
		n.Disk.Close()
		return nil, err
	}
	n.Addr = addr
	go n.Exec.Run()
	return n, nil
}

// Close shuts the node down and releases its media.
func (n *DiskNode) Close() {
	n.SAN.Close()
	n.Exec.Close()
	n.Disk.Close()
}

// ClientNode is a live file-system client.
type ClientNode struct {
	Client *client.Client
	Ctrl   *Transport
	SAN    *Transport
	Exec   *Executor
	Reg    *stats.Registry
	// tmo times Sync's completion deadline. It deliberately bypasses the
	// executor-funneled protocol clock: the timeout must still fire when
	// the executor is the thing that is stuck. WithClock overrides it.
	tmo sim.Clock
}

// StartClientNode launches client spec.ID: it dials the topology's
// server on the control network and the disks on the SAN. When the
// server is a replica group, the client dials every member and rotates
// across them on redirects and silence.
func StartClientNode(spec NodeSpec, cfg client.Config, opts ...Option) (*ClientNode, error) {
	o := buildOptions(opts)
	n := &ClientNode{Exec: NewExecutor(), Reg: o.reg}
	peers := map[msg.NodeID]string{spec.Topo.Server: spec.Topo.ServerAddr}
	if g := spec.Topo.GroupOf(spec.Topo.Server); g != nil {
		for _, m := range g {
			if addr, ok := spec.Topo.Servers[m]; ok {
				peers[m] = addr
			}
		}
		if cfg.Replicas == nil {
			cfg.Replicas = g
		}
	}
	n.Ctrl = New(spec.ID, peers,
		func(env msg.Envelope) { n.Client.Deliver(env) })
	n.SAN = New(spec.ID, spec.Topo.Disks, func(env msg.Envelope) { n.Client.DeliverSAN(env) })
	n.Ctrl.UseExecutor(n.Exec)
	n.SAN.UseExecutor(n.Exec)
	o.applyControl(n.Ctrl)
	o.applySAN(n.SAN)
	clock := o.clock
	if clock == nil {
		clock = n.Ctrl.Clock()
		n.tmo = sim.NewRealClock(nil)
	} else {
		n.tmo = clock
	}
	n.Client = client.New(spec.ID, spec.Topo.Server, cfg, clock,
		n.Ctrl.Send, n.SAN.Send, nil, n.Reg, o.tracer)
	go n.Exec.Run()
	return n, nil
}

// Do runs fn on the client's executor and waits for it to be scheduled —
// the bridge from synchronous callers (CLI, tests) into the event-driven
// client. fn must arrange its own completion signalling.
func (n *ClientNode) Do(fn func()) { n.Exec.Submit(fn) }

// Sync returns a blocking wrapper over the node's client: each call
// starts the operation on the executor (where all client callbacks run)
// and blocks the calling goroutine until it completes or timeout passes
// (0 = a default 30s).
func (n *ClientNode) Sync(timeout time.Duration) *client.SyncClient {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return client.NewSync(n.Client, func(start func(done func())) bool {
		ch := make(chan struct{})
		n.Exec.Submit(func() {
			var once sync.Once
			start(func() { once.Do(func() { close(ch) }) })
		})
		select {
		case <-ch:
			return true
		case <-sim.After(n.tmo, timeout):
			return false
		}
	})
}

// Close shuts the node down.
func (n *ClientNode) Close() {
	n.Ctrl.Close()
	n.SAN.Close()
	n.Exec.Close()
}

// ShardClientNode is a live client of a sharded installation: one
// protocol instance — lease, locks, cache, SAN request-ID space — per
// lease authority in Topo.Servers, all sharing the node's ID, executor,
// and two transports. The same client-side router as the simulated
// shard.Node: inbound control traffic routes by source authority, disk
// replies by the request ID's per-shard base (disk identity cannot
// route them — a handed-off file's blocks stay on the source shard's
// disks).
type ShardClientNode struct {
	// Subs maps each authority (a replica group's primary ID, when
	// replicated) to the node's protocol instance for it.
	Subs  map[msg.NodeID]*client.Client
	byIdx []*client.Client
	route func(path string) msg.NodeID
	topo  Topology
	Ctrl  *Transport
	SAN   *Transport
	Exec  *Executor
	Reg   *stats.Registry
	tmo   sim.Clock
}

// StartShardClientNode launches client spec.ID against every authority
// in spec.Topo.Servers. route maps a path to the node ID of its owning
// authority (hash placement over Topo.ServerIDs(), ordinarily) and must
// agree with the servers' own placement map.
func StartShardClientNode(spec NodeSpec, cfg client.Config, route func(path string) msg.NodeID,
	opts ...Option) (*ShardClientNode, error) {
	if len(spec.Topo.Servers) == 0 {
		return nil, fmt.Errorf("rpcnet: shard client needs Topo.Servers")
	}
	o := buildOptions(opts)
	n := &ShardClientNode{
		Subs:  make(map[msg.NodeID]*client.Client, len(spec.Topo.Servers)),
		route: route,
		topo:  spec.Topo,
		Exec:  NewExecutor(),
		Reg:   o.reg,
	}
	n.Ctrl = New(spec.ID, spec.Topo.Servers, n.deliverCtrl)
	n.SAN = New(spec.ID, spec.Topo.Disks, n.deliverSAN)
	n.Ctrl.UseExecutor(n.Exec)
	n.SAN.UseExecutor(n.Exec)
	o.applyControl(n.Ctrl)
	o.applySAN(n.SAN)
	clock := o.clock
	if clock == nil {
		clock = n.Ctrl.Clock()
		n.tmo = sim.NewRealClock(nil)
	} else {
		n.tmo = clock
	}
	for i, sid := range spec.Topo.ServerIDs() {
		subCfg := cfg
		subCfg.SANReqBase = msg.ReqID(i+1) << 48
		if g := spec.Topo.GroupOf(sid); g != nil && subCfg.Replicas == nil {
			subCfg.Replicas = g
		}
		sub := client.New(spec.ID, sid, subCfg, clock,
			n.Ctrl.Send, n.SAN.Send, nil, n.Reg, o.tracer)
		n.Subs[sid] = sub
		n.byIdx = append(n.byIdx, sub)
	}
	go n.Exec.Run()
	return n, nil
}

// deliverCtrl routes inbound control traffic by source authority; a
// replica member's traffic belongs to its group primary's instance.
func (n *ShardClientNode) deliverCtrl(env msg.Envelope) {
	if sub, ok := n.Subs[n.topo.primaryOf(env.From)]; ok {
		sub.Deliver(env)
	}
}

func (n *ShardClientNode) deliverSAN(env msg.Envelope) {
	var req msg.ReqID
	switch m := env.Payload.(type) {
	case *msg.DiskReadRes:
		req = m.Req
	case *msg.DiskWriteRes:
		req = m.Req
	case *msg.DiskReadVRes:
		req = m.Req
	case *msg.DiskWriteVRes:
		req = m.Req
	case *msg.FenceRes:
		req = m.Req
	case *msg.DLockRes:
		req = m.Req
	default:
		return
	}
	if si := int(req>>48) - 1; si >= 0 && si < len(n.byIdx) {
		n.byIdx[si].DeliverSAN(env)
	}
}

// Route returns the protocol instance serving the authority that owns
// path (nil if the route function maps it to no known authority).
func (n *ShardClientNode) Route(path string) *client.Client {
	return n.Subs[n.route(path)]
}

// Do runs fn on the node's executor and returns immediately.
func (n *ShardClientNode) Do(fn func()) { n.Exec.Submit(fn) }

// Start registers every protocol instance with its authority, blocking
// until all have recovered or timeout passes (0 = a default 30s).
func (n *ShardClientNode) Start(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ch := make(chan struct{}, len(n.byIdx))
	n.Exec.Submit(func() {
		for _, sub := range n.byIdx {
			sub := sub
			sub.OnRecovered = func(msg.Epoch) { ch <- struct{}{} }
			sub.Start()
		}
	})
	deadline := sim.After(n.tmo, timeout)
	for range n.byIdx {
		select {
		case <-ch:
		case <-deadline:
			return fmt.Errorf("rpcnet: shard client registration timed out")
		}
	}
	return nil
}

// Close shuts the node down.
func (n *ShardClientNode) Close() {
	n.Ctrl.Close()
	n.SAN.Close()
	n.Exec.Close()
}

// Loopback returns "127.0.0.1:0" for ephemeral test listeners.
func Loopback() string { return "127.0.0.1:0" }
