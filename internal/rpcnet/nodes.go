package rpcnet

import (
	"net"
	"sync"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/server"
	"repro/internal/stats"
)

// Executor is a node's serial event loop: every protocol callback —
// message delivery from either network, and every timer — runs here, so
// node state needs no further locking, exactly as in the simulator. The
// queue is unbounded: protocol callbacks must never be dropped while the
// node is alive, and never block their producers.
type Executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

// NewExecutor creates an executor; call Run (usually on a goroutine).
func NewExecutor() *Executor {
	e := &Executor{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Submit enqueues fn; submissions after Close are dropped.
func (e *Executor) Submit(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue = append(e.queue, fn)
	e.cond.Signal()
}

// Run drains tasks until Close.
func (e *Executor) Run() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		fn := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		fn()
	}
}

// Close stops the executor after the queued tasks drain.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// UseExecutor reroutes this transport's deliveries and timers through a
// shared executor, for nodes attached to more than one network.
func (t *Transport) UseExecutor(e *Executor) {
	t.submitFn = e.Submit
	t.clock.SetExec(e.Submit)
}

// ServerNode is a live metadata server: a control listener, a SAN dialer
// for fencing/function-shipping, and the server state machine on one
// executor.
type ServerNode struct {
	Srv  *server.Server
	Ctrl *Transport
	SAN  *Transport
	Exec *Executor
	Addr net.Addr
	Reg  *stats.Registry
}

// StartServerNode launches a server listening for clients on ctrlAddr,
// with the given SAN disk address book.
func StartServerNode(id msg.NodeID, cfg server.Config, ctrlAddr string,
	diskAddrs map[msg.NodeID]string) (*ServerNode, error) {
	n := &ServerNode{Exec: NewExecutor(), Reg: stats.NewRegistry()}
	n.Ctrl = New(id, nil, func(env msg.Envelope) { n.Srv.Deliver(env) })
	n.SAN = New(id, diskAddrs, func(env msg.Envelope) { n.Srv.DeliverSAN(env) })
	n.Ctrl.UseExecutor(n.Exec)
	n.SAN.UseExecutor(n.Exec)
	n.Srv = server.New(id, cfg, n.Ctrl.Clock(), n.Ctrl.Send, n.SAN.Send, n.Reg)
	addr, err := n.Ctrl.Listen(ctrlAddr)
	if err != nil {
		return nil, err
	}
	n.Addr = addr
	go n.Exec.Run()
	return n, nil
}

// Close shuts the node down.
func (n *ServerNode) Close() {
	n.Ctrl.Close()
	n.SAN.Close()
	n.Exec.Close()
}

// DiskNode is a live SAN block device.
type DiskNode struct {
	Disk *disk.Disk
	SAN  *Transport
	Exec *Executor
	Addr net.Addr
}

// StartDiskNode launches a disk listening on sanAddr.
func StartDiskNode(id msg.NodeID, cfg disk.Config, sanAddr string) (*DiskNode, error) {
	n := &DiskNode{Exec: NewExecutor()}
	n.SAN = New(id, nil, func(env msg.Envelope) { n.Disk.Deliver(env) })
	n.SAN.UseExecutor(n.Exec)
	n.Disk = disk.New(id, cfg, n.SAN.Clock(), n.SAN.Send, nil, disk.Observer{})
	addr, err := n.SAN.Listen(sanAddr)
	if err != nil {
		return nil, err
	}
	n.Addr = addr
	go n.Exec.Run()
	return n, nil
}

// Close shuts the node down.
func (n *DiskNode) Close() {
	n.SAN.Close()
	n.Exec.Close()
}

// ClientNode is a live file-system client.
type ClientNode struct {
	Client *client.Client
	Ctrl   *Transport
	SAN    *Transport
	Exec   *Executor
	Reg    *stats.Registry
}

// StartClientNode launches a client that dials the server on the control
// network and the disks on the SAN.
func StartClientNode(id, serverID msg.NodeID, cfg client.Config,
	serverAddr string, diskAddrs map[msg.NodeID]string) (*ClientNode, error) {
	n := &ClientNode{Exec: NewExecutor(), Reg: stats.NewRegistry()}
	n.Ctrl = New(id, map[msg.NodeID]string{serverID: serverAddr},
		func(env msg.Envelope) { n.Client.Deliver(env) })
	n.SAN = New(id, diskAddrs, func(env msg.Envelope) { n.Client.DeliverSAN(env) })
	n.Ctrl.UseExecutor(n.Exec)
	n.SAN.UseExecutor(n.Exec)
	n.Client = client.New(id, serverID, cfg, n.Ctrl.Clock(), n.Ctrl.Send, n.SAN.Send, nil, n.Reg)
	go n.Exec.Run()
	return n, nil
}

// Do runs fn on the client's executor and waits for it to be scheduled —
// the bridge from synchronous callers (CLI, tests) into the event-driven
// client. fn must arrange its own completion signalling.
func (n *ClientNode) Do(fn func()) { n.Exec.Submit(fn) }

// Close shuts the node down.
func (n *ClientNode) Close() {
	n.Ctrl.Close()
	n.SAN.Close()
	n.Exec.Close()
}

// Loopback returns "127.0.0.1:0" for ephemeral test listeners.
func Loopback() string { return "127.0.0.1:0" }
