package rpcnet

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/msg"
)

// TestConnToSingleFlight is the regression test for the concurrent-dial
// race: two (or more) simultaneous Sends to an unconnected peer each
// used to dial, and every register replaced — and closed — the previous
// winner's connection, so a message written on a just-replaced codec
// was silently lost on a perfectly healthy network. The dial must be
// single-flight per peer: one TCP connection, every message delivered.
func TestConnToSingleFlight(t *testing.T) {
	var delivered atomic.Int32
	recv := New(2, nil, func(msg.Envelope) { delivered.Add(1) })
	go recv.Run()
	defer recv.Close()
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	tr := New(1, map[msg.NodeID]string{2: addr.String()}, func(msg.Envelope) {})
	go tr.Run()
	defer tr.Close()

	// Gate the dial so every concurrent Send reaches connTo while the
	// peer is still unconnected — the deterministic version of the race.
	var dials atomic.Int32
	gate := make(chan struct{})
	tr.dialFn = func(a string) (net.Conn, error) {
		dials.Add(1)
		<-gate
		return net.Dial("tcp", a)
	}

	const n = 16
	for i := 0; i < n; i++ {
		tr.Send(2, &msg.KeepAlive{ReqHeader: msg.ReqHeader{Client: 1, Req: msg.ReqID(i + 1)}})
	}
	// Let all n send goroutines reach the dial path, then release it.
	time.Sleep(100 * time.Millisecond)
	close(gate)

	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("%d concurrent sends dialed %d times, want 1 (single-flight)", n, got)
	}
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered %d of %d messages sent on a healthy network", got, n)
	}
}
