package rpcnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

// liveShards boots a sharded installation over real TCP: two lease
// authorities (IDs 1 and 2) with one SAN disk each, the namespace split
// by subtree (/s0 → server 1, /s1 → server 2), and n shard client
// nodes. The shared Servers address book is what lets the authorities
// dial each other for cross-shard handoffs.
type liveShards struct {
	srvs    []*ServerNode
	disks   []*DiskNode
	clients []*ShardClientNode
	place   shard.Subtree
}

func startLiveShards(t *testing.T, nClients int, cfg core.Config, opts ...Option) *liveShards {
	t.Helper()
	ls := &liveShards{
		place: shard.Subtree{Prefixes: map[string]int{"/s0": 0, "/s1": 1}},
	}
	servers := map[msg.NodeID]string{}
	topo := Topology{Servers: servers, Disks: map[msg.NodeID]string{}}
	allCaps := map[msg.NodeID]uint64{}
	diskCaps := make([]map[msg.NodeID]uint64, 2)
	for si := 0; si < 2; si++ {
		id := msg.NodeID(1000 + si)
		topo.Disks[id] = Loopback()
		dn, err := StartDiskNode(NodeSpec{ID: id, Topo: topo}, disk.Config{Blocks: 1 << 12}, opts...)
		if err != nil {
			t.Fatalf("disk %d: %v", si, err)
		}
		ls.disks = append(ls.disks, dn)
		topo.Disks[id] = dn.Addr.String()
		allCaps[id] = 1 << 12
		diskCaps[si] = map[msg.NodeID]uint64{id: 1 << 12}
	}
	owner := func(path string) msg.NodeID {
		idx, ok := ls.place.Owner(path)
		if !ok {
			return msg.None
		}
		return msg.NodeID(1 + idx)
	}
	for si := 0; si < 2; si++ {
		id := msg.NodeID(1 + si)
		stopo := topo
		stopo.Server = id
		stopo.ServerAddr = Loopback()
		sn, err := StartServerNode(NodeSpec{ID: id, Topo: stopo}, server.Config{
			Core: cfg, Disks: diskCaps[si], PlaceOwner: owner, FenceDisks: allCaps,
		}, opts...)
		if err != nil {
			t.Fatalf("server %d: %v", si, err)
		}
		ls.srvs = append(ls.srvs, sn)
		// Fill the shared address book as authorities come up; both
		// entries are present before any traffic (handoff dials included)
		// flows.
		servers[id] = sn.Addr.String()
	}
	for i := 0; i < nClients; i++ {
		cn, err := StartShardClientNode(NodeSpec{ID: msg.NodeID(10 + i), Topo: topo},
			client.Config{Core: cfg}, owner, opts...)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		ls.clients = append(ls.clients, cn)
	}
	t.Cleanup(ls.close)
	return ls
}

func (ls *liveShards) close() {
	for _, c := range ls.clients {
		c.Close()
	}
	for _, s := range ls.srvs {
		s.Close()
	}
	for _, d := range ls.disks {
		d.Close()
	}
}

// clientOp runs fn on client i's executor against the sub owning path
// and waits for done.
func (ls *liveShards) clientOp(t *testing.T, i int, path string, fn func(sub *client.Client, done func())) {
	t.Helper()
	cn := ls.clients[i]
	ch := make(chan struct{}, 1)
	cn.Do(func() {
		sub := cn.Route(path)
		if sub == nil {
			t.Errorf("no route for %s", path)
			ch <- struct{}{}
			return
		}
		fn(sub, func() { ch <- struct{}{} })
	})
	select {
	case <-ch:
	case <-time.After(15 * time.Second):
		t.Fatalf("client %d op on %s timed out", i, path)
	}
}

func (ls *liveShards) open(t *testing.T, i int, path string, write, create bool) msg.Handle {
	t.Helper()
	var h msg.Handle
	ls.clientOp(t, i, path, func(sub *client.Client, done func()) {
		sub.Open(path, write, create, func(gh msg.Handle, _ msg.Attr, e msg.Errno) {
			if e != msg.OK {
				t.Errorf("open %s: %v", path, e)
			}
			h = gh
			done()
		})
	})
	return h
}

func (ls *liveShards) write(t *testing.T, i int, path string, h msg.Handle, idx uint64, data []byte) {
	t.Helper()
	ls.clientOp(t, i, path, func(sub *client.Client, done func()) {
		sub.Write(h, idx, data, func(e msg.Errno) {
			if e != msg.OK {
				t.Errorf("write %s: %v", path, e)
			}
			done()
		})
	})
}

func (ls *liveShards) read(t *testing.T, i int, path string, h msg.Handle, idx uint64) []byte {
	t.Helper()
	var out []byte
	ls.clientOp(t, i, path, func(sub *client.Client, done func()) {
		sub.Read(h, idx, func(data []byte, e msg.Errno) {
			if e != msg.OK {
				t.Errorf("read %s: %v", path, e)
			}
			out = append([]byte(nil), data...)
			done()
		})
	})
	return out
}

// TestLiveShardCrossRename drives the full cross-shard handoff over
// real TCP: write on shard 0, release the lock, mv into shard 1's
// namespace, read the bytes back through the other authority — then
// check the handshake order on the shared trace bus.
func TestLiveShardCrossRename(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	cfg := liveCore()
	ls := startLiveShards(t, 1, cfg, WithTracer(trace.New(ring)))
	if err := ls.clients[0].Start(0); err != nil {
		t.Fatal(err)
	}

	h := ls.open(t, 0, "/s0/file", true, true)
	payload := bytes.Repeat([]byte{'H'}, 512)
	ls.write(t, 0, "/s0/file", h, 0, payload)
	ls.clientOp(t, 0, "/s0/file", func(sub *client.Client, done func()) {
		sub.Sync(func(e msg.Errno) {
			if e != msg.OK {
				t.Errorf("sync: %v", e)
			}
			done()
		})
	})
	var ino msg.ObjectID
	ls.clientOp(t, 0, "/s0/file", func(sub *client.Client, done func()) {
		sub.Lookup("/s0/file", func(attr msg.Attr, e msg.Errno) {
			if e != msg.OK {
				t.Errorf("lookup: %v", e)
			}
			ino = attr.Ino
			done()
		})
	})
	ls.clientOp(t, 0, "/s0/file", func(sub *client.Client, done func()) {
		sub.ReleaseLock(ino, func(e msg.Errno) {
			if e != msg.OK {
				t.Errorf("release: %v", e)
			}
			done()
		})
	})

	// The mv: routed to the authority owning the OLD path, which runs
	// the handoff with its peer before answering.
	ls.clientOp(t, 0, "/s0/file", func(sub *client.Client, done func()) {
		sub.Rename("/s0/file", "/s1/file", func(e msg.Errno) {
			if e != msg.OK {
				t.Errorf("cross-shard rename: %v", e)
			}
			done()
		})
	})

	// Old name gone (asked of shard 0), new name serves the bytes
	// (asked of shard 1 — a different TCP connection, different lease).
	ls.clientOp(t, 0, "/s0/file", func(sub *client.Client, done func()) {
		sub.Lookup("/s0/file", func(_ msg.Attr, e msg.Errno) {
			if e != msg.ErrNoEnt {
				t.Errorf("old name after mv: %v, want ErrNoEnt", e)
			}
			done()
		})
	})
	rh := ls.open(t, 0, "/s1/file", false, false)
	if got := ls.read(t, 0, "/s1/file", rh, 0); !bytes.Equal(got[:len(payload)], payload) {
		t.Fatal("payload corrupted across the handoff")
	}

	events := ring.Events()
	if n := events.Count(trace.ByNode(2), trace.ByType(trace.EvShardInstall)); n != 1 {
		t.Fatalf("installed %d times, want 1", n)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(1), trace.ByType(trace.EvShardHandoff)),
		trace.And(trace.ByNode(2), trace.ByType(trace.EvShardInstall))); err != nil {
		t.Fatalf("handoff/install ordering on live transport: %v", err)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(2), trace.ByType(trace.EvShardInstall)),
		trace.And(trace.ByNode(1), trace.ByType(trace.EvShardDone))); err != nil {
		t.Fatalf("install/done ordering on live transport: %v", err)
	}
}

// TestLiveShardTheorem31PerShard is the paper's safety theorem per
// authority on the live stack: a shard client dirty on BOTH shards is
// cut off; each authority independently steals, and each steal is
// preceded by the client's expiry of that specific pair's lease.
func TestLiveShardTheorem31PerShard(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	cfg := liveCore()
	cfg.Tau = 1500 * time.Millisecond
	ls := startLiveShards(t, 2, cfg, WithTracer(trace.New(ring)))
	for i := range ls.clients {
		if err := ls.clients[i].Start(0); err != nil {
			t.Fatal(err)
		}
	}

	h0 := ls.open(t, 0, "/s0/f", true, true)
	h1 := ls.open(t, 0, "/s1/f", true, true)
	ls.write(t, 0, "/s0/f", h0, 0, []byte("dirty-on-shard-0"))
	ls.write(t, 0, "/s1/f", h1, 0, []byte("dirty-on-shard-1"))

	// Cut client 0 off from BOTH authorities at once. Its executor,
	// clocks, and SAN stay alive: each sub's lease state machine walks
	// to expiry unattended and flushes to the disks.
	ls.clients[0].Ctrl.Close()

	// The survivor demands both files; opens complete only after each
	// authority's steal.
	g0 := ls.open(t, 1, "/s0/f", true, false)
	ls.write(t, 1, "/s0/f", g0, 0, []byte("stolen-0"))
	g1 := ls.open(t, 1, "/s1/f", true, false)
	ls.write(t, 1, "/s1/f", g1, 0, []byte("stolen-1"))

	events := ring.Events()
	isolated := msg.NodeID(10)
	for si := 0; si < 2; si++ {
		sid := msg.NodeID(1 + si)
		if n := events.Count(trace.ByNode(sid), trace.ByType(trace.EvStealFired),
			trace.ByPeer(isolated)); n != 1 {
			t.Fatalf("shard %d: steal fired %d times, want 1", si, n)
		}
		if err := events.Precedes(
			trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire), trace.ByPeer(sid)),
			trace.And(trace.ByNode(sid), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)),
		); err != nil {
			t.Fatalf("Theorem 3.1 on live shard %d: %v", si, err)
		}
		exp, _ := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire), trace.ByPeer(sid))
		if exp.Note == "dirty" {
			t.Fatalf("shard %d: expiry with the phase-4 flush incomplete", si)
		}
	}
}
