package rpcnet

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/wire"
)

// dialRawBinary opens a raw TCP connection to addr and performs the
// binary-codec preamble + hello by hand, so the test controls every
// subsequent byte on the wire.
func dialRawBinary(t *testing.T, addr string, from msg.NodeID) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var hello [5]byte
	hello[0] = 1<<4 | uint8(wire.Binary) // preamble: version 1, binary
	binary.BigEndian.PutUint32(hello[1:], uint32(int32(from)))
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

// waitForNote polls the ring until an EvTransport note about peer
// matches want, or fails after two seconds.
func waitForNote(t *testing.T, ring *trace.Ring, peer msg.NodeID, want string) trace.Event {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range ring.Events() {
			if ev.Type == trace.EvTransport && ev.Peer == peer && strings.Contains(ev.Note, want) {
				return ev
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no EvTransport note containing %q for peer %v; events: %+v",
		want, peer, ring.Events())
	return trace.Event{}
}

// TestCorruptFrameTraceDistinguishesPeerClose is the regression test
// for the ErrBadFrame/io.EOF split: a peer that sends protocol damage
// must be reported as a corrupt frame, and a peer that goes away must
// be reported as a closed connection — previously both surfaced as the
// same generic read error, so chaos traces blamed "peer restart" for
// what was actually frame corruption.
func TestCorruptFrameTraceDistinguishesPeerClose(t *testing.T) {
	ring := trace.NewRing(1 << 10)
	tr := New(99, nil, func(env msg.Envelope) {})
	tr.SetTracer(trace.New(ring))
	addr, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go tr.Run()
	t.Cleanup(tr.Close)

	// Peer 55 sends an impossible length prefix after a valid handshake.
	corrupt := dialRawBinary(t, addr.String(), 55)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(wire.MaxFrame+7))
	if _, err := corrupt.Write(lenb[:]); err != nil {
		t.Fatal(err)
	}
	ev := waitForNote(t, ring, 55, "corrupt frame")
	if strings.Contains(ev.Note, "connection closed") {
		t.Fatalf("corrupt frame misreported as a peer close: %q", ev.Note)
	}

	// Peer 56 hangs up cleanly after the handshake.
	closer := dialRawBinary(t, addr.String(), 56)
	// Give the acceptor a moment to register the peer before the close
	// races the hello read.
	waitForNote(t, ring, 56, "accepted")
	closer.Close()
	ev = waitForNote(t, ring, 56, "connection closed")
	if strings.Contains(ev.Note, "corrupt frame") {
		t.Fatalf("peer close misreported as frame corruption: %q", ev.Note)
	}

	// And the corrupt peer was never blamed for a clean close.
	for _, ev := range ring.Events() {
		if ev.Peer == 55 && strings.Contains(ev.Note, "connection closed") {
			t.Fatalf("corrupt peer also reported as clean close: %q", ev.Note)
		}
	}
}

// TestCorruptFrameDropsOnlyThatConnection: frame damage on one
// connection must not disturb traffic on another — the transport drops
// the damaged connection and keeps serving.
func TestCorruptFrameDropsOnlyThatConnection(t *testing.T) {
	got := make(chan msg.Envelope, 16)
	tr := New(99, nil, func(env msg.Envelope) { got <- env })
	addr, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go tr.Run()
	t.Cleanup(tr.Close)

	// A healthy peer using the real codec.
	healthyConn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthyConn.Close() })
	healthy, err := wire.Dial(healthyConn, wire.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.SendHello(60); err != nil {
		t.Fatal(err)
	}

	// A corrupt peer: valid handshake, then garbage.
	corrupt := dialRawBinary(t, addr.String(), 61)
	corrupt.Write([]byte{0, 0, 0, 12, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	// The healthy peer's traffic still flows after the corrupt drop.
	want := &msg.KeepAlive{ReqHeader: msg.ReqHeader{Client: 60, Req: 77}}
	deadline := time.After(2 * time.Second)
	for {
		if err := healthy.Send(&msg.Envelope{From: 60, To: 99, Payload: want}); err != nil {
			t.Fatalf("healthy connection broken by another peer's corruption: %v", err)
		}
		select {
		case env := <-got:
			if ka, ok := env.Payload.(*msg.KeepAlive); ok && ka.Req == 77 {
				return
			}
		case <-deadline:
			t.Fatal("keep-alive never delivered after corrupt-frame drop")
		case <-time.After(50 * time.Millisecond):
		}
	}
}
