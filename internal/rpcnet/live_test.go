package rpcnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// liveCore returns protocol timing suited to loopback TCP tests.
func liveCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tau = 3 * time.Second
	cfg.RetryInterval = 100 * time.Millisecond
	return cfg
}

// liveCluster boots 1 server + 2 disks + n clients over real TCP.
type liveCluster struct {
	srv     *ServerNode
	disks   []*DiskNode
	clients []*ClientNode
}

func startLive(t *testing.T, nClients int) *liveCluster {
	return startLiveCfg(t, nClients, liveCore())
}

// startLiveCfg boots the installation with an explicit protocol config
// and node options (e.g. WithTracer) applied to every node.
func startLiveCfg(t *testing.T, nClients int, cfg core.Config, opts ...Option) *liveCluster {
	t.Helper()
	lc := &liveCluster{}
	topo := Topology{Server: 1, ServerAddr: Loopback(), Disks: make(map[msg.NodeID]string)}
	diskCaps := make(map[msg.NodeID]uint64)
	for i := 0; i < 2; i++ {
		id := msg.NodeID(1000 + i)
		// Disks listen on ephemeral ports; fill the topology as they come
		// up so later nodes can dial them.
		topo.Disks[id] = Loopback()
		dn, err := StartDiskNode(NodeSpec{ID: id, Topo: topo}, disk.Config{Blocks: 1 << 12}, opts...)
		if err != nil {
			t.Fatalf("disk: %v", err)
		}
		lc.disks = append(lc.disks, dn)
		topo.Disks[id] = dn.Addr.String()
		diskCaps[id] = 1 << 12
	}
	srv, err := StartServerNode(NodeSpec{ID: topo.Server, Topo: topo}, server.Config{
		Core: cfg, Disks: diskCaps,
	}, opts...)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lc.srv = srv
	topo.ServerAddr = srv.Addr.String()
	for i := 0; i < nClients; i++ {
		cn, err := StartClientNode(NodeSpec{ID: msg.NodeID(10 + i), Topo: topo},
			client.Config{Core: cfg}, opts...)
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		lc.clients = append(lc.clients, cn)
	}
	t.Cleanup(lc.close)
	return lc
}

func (lc *liveCluster) close() {
	for _, c := range lc.clients {
		c.Close()
	}
	if lc.srv != nil {
		lc.srv.Close()
	}
	for _, d := range lc.disks {
		d.Close()
	}
}

// sync helpers: run an async client op and wait for its callback.
func (lc *liveCluster) start(t *testing.T, i int) {
	t.Helper()
	cn := lc.clients[i]
	done := make(chan msg.Epoch, 1)
	cn.Do(func() {
		// OnRecovered fires again on every later revival (e.g. after an
		// authority takeover); only the first one completes registration,
		// and a blocking send here would wedge the client's event loop.
		cn.Client.OnRecovered = func(e msg.Epoch) {
			select {
			case done <- e:
			default:
			}
		}
		cn.Client.Start()
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("client %d registration timed out", i)
	}
}

func (lc *liveCluster) open(t *testing.T, i int, path string, write, create bool) msg.Handle {
	t.Helper()
	cn := lc.clients[i]
	type res struct {
		h     msg.Handle
		errno msg.Errno
	}
	ch := make(chan res, 1)
	cn.Do(func() {
		cn.Client.Open(path, write, create, func(h msg.Handle, _ msg.Attr, e msg.Errno) {
			ch <- res{h, e}
		})
	})
	select {
	case r := <-ch:
		if r.errno != msg.OK {
			t.Fatalf("open %s: %v", path, r.errno)
		}
		return r.h
	case <-time.After(5 * time.Second):
		t.Fatalf("open %s timed out", path)
		return 0
	}
}

func (lc *liveCluster) write(t *testing.T, i int, h msg.Handle, idx uint64, data []byte) {
	t.Helper()
	cn := lc.clients[i]
	ch := make(chan msg.Errno, 1)
	cn.Do(func() { cn.Client.Write(h, idx, data, func(e msg.Errno) { ch <- e }) })
	select {
	case e := <-ch:
		if e != msg.OK {
			t.Fatalf("write: %v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write timed out")
	}
}

func (lc *liveCluster) read(t *testing.T, i int, h msg.Handle, idx uint64) []byte {
	t.Helper()
	cn := lc.clients[i]
	type res struct {
		data  []byte
		errno msg.Errno
	}
	ch := make(chan res, 1)
	cn.Do(func() { cn.Client.Read(h, idx, func(d []byte, e msg.Errno) { ch <- res{d, e} }) })
	select {
	case r := <-ch:
		if r.errno != msg.OK {
			t.Fatalf("read: %v", r.errno)
		}
		return r.data
	case <-time.After(5 * time.Second):
		t.Fatal("read timed out")
		return nil
	}
}

func (lc *liveCluster) sync(t *testing.T, i int) {
	t.Helper()
	cn := lc.clients[i]
	ch := make(chan msg.Errno, 1)
	cn.Do(func() { cn.Client.Sync(func(e msg.Errno) { ch <- e }) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("sync timed out")
	}
}

func TestLiveEndToEnd(t *testing.T) {
	lc := startLive(t, 2)
	lc.start(t, 0)
	lc.start(t, 1)

	h0 := lc.open(t, 0, "/live.txt", true, true)
	payload := bytes.Repeat([]byte("tank"), 1024)
	lc.write(t, 0, h0, 0, payload)
	lc.sync(t, 0)

	// Cross-client read over real TCP: demand → downgrade → SAN read.
	h1 := lc.open(t, 1, "/live.txt", false, false)
	got := lc.read(t, 1, h1, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("cross-client read mismatch: %d bytes", len(got))
	}
}

func TestLiveWriteBackDemandFlush(t *testing.T) {
	lc := startLive(t, 2)
	lc.start(t, 0)
	lc.start(t, 1)

	h0 := lc.open(t, 0, "/dirty.txt", true, true)
	lc.write(t, 0, h0, 0, []byte("unflushed-dirty-data")) // stays in cache
	h1 := lc.open(t, 1, "/dirty.txt", false, false)
	got := lc.read(t, 1, h1, 0)
	if !bytes.HasPrefix(got, []byte("unflushed-dirty-data")) {
		t.Fatalf("demand did not flush dirty data: %q", got[:24])
	}
}

func TestLiveLeaseRenewalIsFree(t *testing.T) {
	lc := startLive(t, 1)
	lc.start(t, 0)
	cn := lc.clients[0]
	// Stay active for over a lease period (τ=3s) with ordinary metadata
	// traffic: it must renew the lease with zero keep-alives. (Pure
	// cache-hit activity would legitimately need keep-alives — the lease
	// is renewed by messages, not by local work.)
	deadline := time.Now().Add(3500 * time.Millisecond)
	for time.Now().Before(deadline) {
		ch := make(chan msg.Errno, 1)
		cn.Do(func() { cn.Client.Stat(1, func(_ msg.Attr, e msg.Errno) { ch <- e }) })
		select {
		case e := <-ch:
			if e != msg.OK {
				t.Fatalf("stat: %v", e)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stat timed out")
		}
		time.Sleep(150 * time.Millisecond)
	}
	// Read protocol state on the executor (stats are not synchronized).
	type snapshot struct {
		ka    uint64
		phase core.Phase
	}
	ch := make(chan snapshot, 1)
	cn.Do(func() {
		ch <- snapshot{
			ka:    cn.Reg.CounterValue("client.n10.lease.keepalives"),
			phase: cn.Client.Lease().Phase(),
		}
	})
	got := <-ch
	if got.ka != 0 {
		t.Fatalf("active client sent %d keep-alives", got.ka)
	}
	if got.phase != core.Phase1Valid {
		t.Fatalf("lease phase = %v, want valid", got.phase)
	}
}

// TestLiveTraceTheorem31 replays the Fig 2 isolation scenario over real
// TCP with one shared trace bus across all five processes-in-one: the
// partitioned client walks all four lease phases unattended, the server
// arms and fires the τ(1+ε) steal, and the client's expiry precedes the
// steal in the shared event order — Theorem 3.1, observed on the live
// transport rather than the simulator.
func TestLiveTraceTheorem31(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	tracer := trace.New(ring)
	cfg := liveCore()
	cfg.Tau = 1500 * time.Millisecond
	lc := startLiveCfg(t, 2, cfg, WithTracer(tracer))
	lc.start(t, 0)
	lc.start(t, 1)

	h0 := lc.open(t, 0, "/stolen.txt", true, true)
	lc.write(t, 0, h0, 0, []byte("dirty-at-isolation")) // stays in cache

	// Partition client 0 from the control network. Its executor, clock,
	// and SAN stay alive: the lease state machine runs unattended (its
	// keep-alives simply drop) and the phase-4 flush can still reach the
	// disks. The server side sees its demand go undelivered.
	lc.clients[0].Ctrl.Close()

	// The survivor demands the same file; open only completes after the
	// server's steal reassigns the lock, so no polling is needed.
	h1 := lc.open(t, 1, "/stolen.txt", true, false)
	lc.write(t, 1, h1, 0, []byte("new-owner"))

	isolated := msg.NodeID(10)
	events := ring.Events()

	phases := events.PhaseSequence(isolated)
	want := []string{"valid", "renewal", "suspect", "flush", "expired"}
	if !trace.HasSubsequence(phases, want) {
		t.Fatalf("client phase sequence %v missing subsequence %v", phases, want)
	}
	if n := events.Count(trace.ByNode(1), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)); n != 1 {
		t.Fatalf("steal fired %d times, want 1", n)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(1), trace.ByType(trace.EvStealFired))); err != nil {
		t.Fatalf("Theorem 3.1 ordering on live transport: %v", err)
	}
	if exp, ok := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire)); ok && exp.Note == "dirty" {
		t.Fatal("client expired with the phase-4 flush incomplete")
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	for _, id := range []wire.ID{wire.Gob, wire.Binary} {
		t.Run(id.String(), func(t *testing.T) {
			a, b := newPipe(t)
			type accepted struct {
				c   wire.Codec
				err error
			}
			ch := make(chan accepted, 1)
			go func() {
				c, err := wire.Accept(b)
				ch <- accepted{c, err}
			}()
			ca, err := wire.Dial(a, id)
			if err != nil {
				t.Fatal(err)
			}
			r := <-ch
			if r.err != nil {
				t.Fatal(r.err)
			}
			cb := r.c
			go func() {
				ca.SendHello(7)
				ca.Send(&msg.Envelope{From: 7, To: 1, Payload: &msg.KeepAlive{
					ReqHeader: msg.ReqHeader{Client: 7, Req: 3, Epoch: 2},
				}})
			}()
			from, err := cb.RecvHello()
			if err != nil || from != 7 {
				t.Fatalf("hello: %v %v", from, err)
			}
			env, err := cb.Recv()
			if err != nil {
				t.Fatal(err)
			}
			ka, ok := env.Payload.(*msg.KeepAlive)
			if !ok || ka.Req != 3 || ka.Epoch != 2 {
				t.Fatalf("payload = %#v", env.Payload)
			}
			env.Release()
		})
	}
}

func newPipe(t *testing.T) (a, b net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	c1, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { c1.Close(); r.c.Close() })
	return c1, r.c
}
