// Package rpcnet runs the Storage Tank protocol over real TCP. It gives
// each node the same three things the simulator gives it — a Clock, a
// best-effort Send, and a serial executor for all callbacks — so the
// protocol code in internal/core, internal/client, and internal/server
// runs unchanged.
//
// Datagram semantics are preserved deliberately: Send never blocks the
// executor, a dead connection silently drops traffic until the next dial
// attempt, and delivery gives no feedback. Retries, ACK/NACK, and
// at-most-once execution all come from the protocol layer, as on the
// simulated network. (A TCP connection does provide ordering per peer,
// which the protocol does not rely on — it is safe under weaker
// assumptions.)
package rpcnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Transport is one node's endpoint on one network (control or SAN).
type Transport struct {
	self msg.NodeID
	// addrs maps peers this node dials (clients dial servers/disks;
	// acceptors learn peers from Hello frames).
	addrs map[msg.NodeID]string

	mu       sync.Mutex
	conns    map[msg.NodeID]wire.Codec
	dials    map[msg.NodeID]*dialCall
	listener net.Listener
	closed   bool

	// codec is the wire encoding this node announces when IT dials; the
	// acceptor side of every connection adopts the dialer's choice, so
	// mixed-codec installations interoperate per connection.
	codec wire.ID

	// exec serializes every handler and timer callback; submitFn, when
	// set by UseExecutor, reroutes to a shared executor instead.
	exec     *Executor
	submitFn func(func())
	handler  func(env msg.Envelope)
	clock    *sim.RealClock
	// delayClock times fault-injected send latency. Unlike clock, its
	// callbacks must never funnel through the executor: the send
	// goroutine parks on it, and a drained executor would turn a 5ms
	// injected delay into a leaked goroutine. Defaults to a plain wall
	// clock; SetClock overrides it for tests that own time.
	delayClock sim.Clock

	// dialFn establishes outbound connections (net.Dial in production;
	// tests swap it to observe and gate dialing).
	dialFn func(addr string) (net.Conn, error)
	// faults, when set, is the live fault-injection plan consulted for
	// every outbound and inbound message (see internal/faultnet).
	faults atomic.Pointer[faultnet.Faults]

	logf   func(format string, args ...any)
	tracer *trace.Tracer
}

// New creates a transport for node self that can dial the given peers.
// handler receives every delivered envelope on the executor goroutine.
func New(self msg.NodeID, addrs map[msg.NodeID]string, handler func(env msg.Envelope)) *Transport {
	t := &Transport{
		self:    self,
		addrs:   addrs,
		conns:   make(map[msg.NodeID]wire.Codec),
		dials:   make(map[msg.NodeID]*dialCall),
		exec:    NewExecutor(),
		handler: handler,
		dialFn:  func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
		logf:    func(string, ...any) {},
		codec:   wire.Binary,
	}
	t.clock = sim.NewRealClock(t.Submit)
	t.delayClock = sim.NewRealClock(nil)
	return t
}

// SetCodec selects the wire encoding this transport uses for outbound
// dials (default wire.Binary). Inbound connections always adopt the
// dialer's announced codec regardless of this setting. Call before
// traffic flows.
func (t *Transport) SetCodec(c wire.ID) { t.codec = c }

// SetClock overrides the clock that times fault-injected send latency
// (default: a wall clock firing on the timer goroutine). Call before
// traffic flows.
func (t *Transport) SetClock(c sim.Clock) {
	if c != nil {
		t.delayClock = c
	}
}

// SetLogf installs a debug logger.
//
// Deprecated: use SetTracer with a trace.Tracer backed by
// trace.NewLogf — transport diagnostics then land in the same
// totally-ordered stream as the lease-lifecycle events instead of an
// unstructured side channel.
func (t *Transport) SetLogf(f func(format string, args ...any)) {
	if f != nil {
		t.logf = f
	}
}

// SetTracer attaches a trace bus; connection-level diagnostics (accepts,
// dial failures, dropped sends) are emitted as EvTransport events
// stamped with this node's ID and wall clock.
func (t *Transport) SetTracer(tr *trace.Tracer) { t.tracer = tr }

// SetFaults installs (or, with nil, removes) a fault-injection plan.
// Every outbound message is judged by faults.JudgeSend — structural
// blocks and probabilistic loss drop it, configured latency delays it —
// and every inbound message by faults.JudgeRecv. Safe to call at
// runtime; faults apply to messages judged after the call.
func (t *Transport) SetFaults(f *faultnet.Faults) { t.faults.Store(f) }

// Faults returns the installed fault plan, if any.
func (t *Transport) Faults() *faultnet.Faults { return t.faults.Load() }

// dropInjected reports a fault-injected drop: the canonical
// EvTransport note (DropReason.Note()) plus the debug log. dir is
// "send" or "recv" for the log line only.
func (t *Transport) dropInjected(peer msg.NodeID, r simnet.DropReason, dir string) {
	t.logf("rpcnet: fault injection dropped %s %v (%s)", dir, peer, r)
	if t.tracer.Enabled() {
		t.tracer.Emit(trace.Event{
			Type: trace.EvTransport,
			Node: t.self,
			Time: t.clock.Now(),
			Peer: peer,
			Note: r.Note(),
		})
	}
}

// debugf reports a transport diagnostic to both the debug logger and,
// when a tracer is attached, the trace bus. peer is the remote node the
// diagnostic concerns (0 when unknown).
func (t *Transport) debugf(peer msg.NodeID, format string, args ...any) {
	t.logf(format, args...)
	if t.tracer.Enabled() {
		t.tracer.Emit(trace.Event{
			Type: trace.EvTransport,
			Node: t.self,
			Time: t.clock.Now(),
			Peer: peer,
			Note: fmt.Sprintf(format, args...),
		})
	}
}

// Clock returns the node's wall clock; its timers fire on the executor.
func (t *Transport) Clock() sim.Clock { return t.clock }

// Submit enqueues fn on the executor.
func (t *Transport) Submit(fn func()) {
	if t.submitFn != nil {
		t.submitFn(fn)
		return
	}
	t.exec.Submit(fn)
}

// Run processes executor tasks until Close. Call from a dedicated
// goroutine (or main). Not needed when UseExecutor routes callbacks to a
// shared executor.
func (t *Transport) Run() { t.exec.Run() }

// Listen accepts inbound connections on addr (servers, disks).
func (t *Transport) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.listener = l
	t.mu.Unlock()
	go t.acceptLoop(l)
	return l.Addr(), nil
}

func (t *Transport) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handleInbound(conn)
	}
}

func (t *Transport) handleInbound(conn net.Conn) {
	codec, err := wire.Accept(conn)
	if err != nil {
		t.debugf(0, "inbound preamble from %v failed: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	from, err := codec.RecvHello()
	if err != nil {
		t.debugf(0, "inbound hello from %v failed: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	t.debugf(from, "accepted %v from %v", from, conn.RemoteAddr())
	t.register(from, codec)
	t.readLoop(from, codec)
}

// register installs the connection for outbound traffic to the peer,
// replacing (and closing) any previous one.
func (t *Transport) register(peer msg.NodeID, codec wire.Codec) {
	t.mu.Lock()
	old := t.conns[peer]
	t.conns[peer] = codec
	t.mu.Unlock()
	if old != nil && old != codec {
		old.Close()
	}
}

func (t *Transport) dropConn(peer msg.NodeID, codec wire.Codec) {
	t.mu.Lock()
	if t.conns[peer] == codec {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	codec.Close()
}

func (t *Transport) readLoop(peer msg.NodeID, codec wire.Codec) {
	for {
		env, err := codec.Recv()
		if err != nil {
			// A typed bad frame is protocol damage — corrupt framing, a
			// codec bug, a garbage-injecting middlebox — and is reported as
			// such; everything else (io.EOF above all) is the peer going
			// away, the ordinary redial case. Conflating them made chaos
			// traces blame "peer restart" for what was really frame
			// corruption.
			if errors.Is(err, wire.ErrBadFrame) {
				t.debugf(peer, "read from %v: dropping connection on corrupt frame: %v", peer, err)
			} else {
				t.debugf(peer, "read from %v: connection closed: %v", peer, err)
			}
			t.dropConn(peer, codec)
			return
		}
		if f := t.faults.Load(); f != nil {
			if v := f.JudgeRecv(env.From, t.self); !v.Deliver {
				t.dropInjected(env.From, v.Reason, "recv")
				env.Release()
				continue
			}
		}
		e := *env
		t.Submit(func() {
			t.handler(e)
			// The handler's return ends the borrow on any pooled receive
			// buffer the payload aliases; handlers that defer work past
			// this point (disk service queues) Retain first.
			e.Release()
		})
	}
}

// Send transmits best-effort. It runs the (possibly blocking) dial and
// write on a goroutine so the executor never stalls; failures drop the
// message, exactly like a lost datagram. An installed fault plan is
// consulted first: blocked or lost messages are dropped before any
// socket work, and injected latency sleeps on the send goroutine.
func (t *Transport) Send(to msg.NodeID, m msg.Message) {
	env := msg.Envelope{From: t.self, To: to, Payload: m}
	var delay time.Duration
	if f := t.faults.Load(); f != nil {
		v := f.JudgeSend(t.self, to)
		if !v.Deliver {
			t.dropInjected(to, v.Reason, "send")
			return
		}
		delay = v.Delay
	}
	go func() {
		if delay > 0 {
			sim.Sleep(t.delayClock, delay)
		}
		codec, err := t.connTo(to)
		if err != nil {
			t.debugf(to, "send to %v: %v", to, err)
			return
		}
		if err := codec.Send(&env); err != nil {
			t.debugf(to, "send to %v: %v", to, err)
			t.dropConn(to, codec)
		}
	}()
}

// dialCall is an in-flight dial to one peer; concurrent senders wait on
// done instead of dialing again.
type dialCall struct {
	done  chan struct{}
	codec wire.Codec
	err   error
}

// connTo returns (dialing if necessary) a connection to the peer. Dials
// are single-flight per peer: without that, two simultaneous Sends to
// an unconnected peer would both dial, the loser's connection would be
// closed by register, and its in-flight message silently lost even
// though the network was healthy.
func (t *Transport) connTo(peer msg.NodeID) (wire.Codec, error) {
	t.mu.Lock()
	if c, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		return c, nil
	}
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("rpcnet: transport closed")
	}
	if dc, ok := t.dials[peer]; ok {
		t.mu.Unlock()
		<-dc.done
		return dc.codec, dc.err
	}
	addr, ok := t.addrs[peer]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("rpcnet: no address for %v and no inbound connection", peer)
	}
	dc := &dialCall{done: make(chan struct{})}
	t.dials[peer] = dc
	t.mu.Unlock()

	dc.codec, dc.err = t.dial(peer, addr)
	t.mu.Lock()
	delete(t.dials, peer)
	t.mu.Unlock()
	close(dc.done)
	return dc.codec, dc.err
}

// dial establishes, negotiates, hellos, and registers one outbound
// connection (preamble announcing this node's codec, then the hello).
func (t *Transport) dial(peer msg.NodeID, addr string) (wire.Codec, error) {
	conn, err := t.dialFn(addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: dial %v (%s): %w", peer, addr, err)
	}
	codec, err := wire.Dial(conn, t.codec)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := codec.SendHello(t.self); err != nil {
		conn.Close()
		return nil, err
	}
	t.register(peer, codec)
	go t.readLoop(peer, codec)
	return codec, nil
}

// Close shuts the transport down.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	l := t.listener
	conns := t.conns
	t.conns = make(map[msg.NodeID]wire.Codec)
	t.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.exec.Close()
}
