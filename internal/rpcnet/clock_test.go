package rpcnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/sim"
)

// recClock is a sim.Clock stub that records every armed timer. With
// fire set it runs each callback synchronously, so clock-routed sleeps
// and timeouts resolve instantly.
type recClock struct {
	mu    sync.Mutex
	fire  bool
	armed []time.Duration
}

func (c *recClock) Now() sim.Time { return 0 }

func (c *recClock) AfterFunc(d time.Duration, fn func()) sim.Timer {
	c.mu.Lock()
	c.armed = append(c.armed, d)
	c.mu.Unlock()
	if c.fire {
		fn()
	}
	return recTimer{}
}

func (c *recClock) durations() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.armed...)
}

type recTimer struct{}

func (recTimer) Stop() bool { return false }

// TestSendDelayUsesInjectedClock is the regression test for routing the
// fault-injected send latency through the transport's clock instead of
// time.Sleep: the injected delay must be armed on the installed clock.
func TestSendDelayUsesInjectedClock(t *testing.T) {
	tr := New(1, map[msg.NodeID]string{}, func(msg.Envelope) {})
	defer tr.Close()
	clk := &recClock{fire: true}
	tr.SetClock(clk)

	faults := faultnet.New(1)
	faults.SetLink(1, 2, faultnet.Link{Delay: 7 * time.Millisecond})
	tr.SetFaults(faults)

	tr.Send(2, &msg.KeepAlive{})

	deadline := time.Now().Add(5 * time.Second)
	for len(clk.durations()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("send goroutine never armed the injected clock")
		}
		time.Sleep(time.Millisecond)
	}
	if d := clk.durations(); len(d) != 1 || d[0] != 7*time.Millisecond {
		t.Fatalf("injected delay armed %v on the clock, want exactly one 7ms timer", d)
	}
}

// TestWithClockPlumbing is the regression test for routing the Sync
// timeout through the node's injected clock instead of time.After:
// WithClock must reach both the client node's timeout clock and the
// delay clocks of its transports.
func TestWithClockPlumbing(t *testing.T) {
	clk := &recClock{}
	topo := Topology{Server: 1, ServerAddr: "127.0.0.1:9", Disks: map[msg.NodeID]string{}}
	n, err := StartClientNode(NodeSpec{ID: 7, Topo: topo}, client.Config{Core: liveCore()}, WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.tmo != sim.Clock(clk) {
		t.Error("WithClock did not reach the Sync timeout clock")
	}
	if n.Ctrl.delayClock != sim.Clock(clk) {
		t.Error("WithClock did not reach the control transport's delay clock")
	}
	if n.SAN.delayClock != sim.Clock(clk) {
		t.Error("WithClock did not reach the SAN transport's delay clock")
	}
}

// TestSyncTimeoutDefaultsToWallClock pins the default: without
// WithClock the timeout clock must be a wall clock that does NOT funnel
// through the node executor, so Sync still times out when the executor
// itself is wedged.
func TestSyncTimeoutDefaultsToWallClock(t *testing.T) {
	topo := Topology{Server: 1, ServerAddr: "127.0.0.1:9", Disks: map[msg.NodeID]string{}}
	n, err := StartClientNode(NodeSpec{ID: 8, Topo: topo}, client.Config{Core: liveCore()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.tmo == nil {
		t.Fatal("no default Sync timeout clock")
	}
	if n.tmo == n.Ctrl.Clock() {
		t.Error("Sync timeout clock must not be the executor-funneled protocol clock")
	}
	fired := make(chan struct{})
	n.tmo.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("default timeout clock never fired off-executor")
	}
}
