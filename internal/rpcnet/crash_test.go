package rpcnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The crash harness: a real disk-node process is SIGKILLed mid
// write-burst and restarted from the same data directory, and the
// survivors are checked against the paper's durability contract —
// every acknowledged write is readable with its contents and version, a
// write torn by the crash is detected (EvDisk "torn") and refused
// rather than served, and a client fenced before the crash is still
// fenced after it. The disk node runs as a child process (this test
// binary re-executed with TANK_DISK_HELPER=1) so the kill is a genuine
// process death, not a polite shutdown.

const (
	crashBlocks = 256
	crashDiskID = msg.NodeID(1000)
	adminID     = msg.NodeID(10)
	fencedID    = msg.NodeID(77)
)

// crashPayload is block b's deterministic contents (first 512 bytes;
// the media zero-pads the rest of the 4 KiB block).
func crashPayload(b uint64) []byte {
	p := make([]byte, 512)
	for i := range p {
		p[i] = byte(b*31 + uint64(i)*7 + 1)
	}
	return p
}

// TestDiskNodeHelper is not a test: it is the disk-node child process.
// Gated on TANK_DISK_HELPER so a normal `go test` run passes through.
func TestDiskNodeHelper(t *testing.T) {
	if os.Getenv("TANK_DISK_HELPER") != "1" {
		return
	}
	dir := os.Getenv("TANK_DIR")
	media, err := blockstore.Open(dir, blockstore.Options{Blocks: crashBlocks})
	if err != nil {
		fmt.Printf("HELPER-ERR open: %v\n", err)
		os.Exit(1)
	}
	tf, err := os.OpenFile(filepath.Join(dir, "trace.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Printf("HELPER-ERR trace: %v\n", err)
		os.Exit(1)
	}
	tracer := trace.New(trace.NewJSONL(tf))
	topo := Topology{Disks: map[msg.NodeID]string{crashDiskID: "127.0.0.1:0"}}
	dn, err := StartDiskNode(NodeSpec{ID: crashDiskID, Topo: topo},
		disk.Config{Blocks: crashBlocks}, WithMedia(media), WithTracer(tracer))
	if err != nil {
		fmt.Printf("HELPER-ERR start: %v\n", err)
		os.Exit(1)
	}
	// The parent parses this line; everything above is already durable.
	fmt.Printf("ADDR %v\n", dn.Addr)
	select {}
}

// sanClient is a raw SAN endpoint for the harness: it dials the disk
// node, funnels replies into a channel, and resends until answered
// (datagram semantics — a reply can be lost to the kill).
type sanClient struct {
	tr      *Transport
	replies chan msg.Message
}

func newSANClient(t *testing.T, self msg.NodeID, diskAddr string) *sanClient {
	t.Helper()
	c := &sanClient{replies: make(chan msg.Message, 64)}
	c.tr = New(self, map[msg.NodeID]string{crashDiskID: diskAddr},
		func(env msg.Envelope) {
			// The harness keeps payloads (and their data slices) past the
			// handler's return; retaining the borrow keeps any pooled
			// receive buffer they alias out of circulation for good.
			env.Retain()
			c.replies <- env.Payload
		})
	go c.tr.Run()
	t.Cleanup(c.tr.Close)
	return c
}

// call sends m until a reply matching want arrives, or the deadline
// passes (nil return).
func (c *sanClient) call(m msg.Message, want func(msg.Message) bool) msg.Message {
	deadline := time.After(5 * time.Second)
	for {
		c.tr.Send(crashDiskID, m)
		resend := time.After(200 * time.Millisecond)
		for {
			select {
			case r := <-c.replies:
				if want(r) {
					return r
				}
			case <-resend:
			case <-deadline:
				return nil
			}
			break
		}
	}
}

func (c *sanClient) read(req msg.ReqID, block uint64) *msg.DiskReadRes {
	r := c.call(&msg.DiskRead{Client: c.tr.self, Req: req, Block: block},
		func(m msg.Message) bool {
			res, ok := m.(*msg.DiskReadRes)
			return ok && res.Req == req
		})
	if r == nil {
		return nil
	}
	return r.(*msg.DiskReadRes)
}

// startCrashHelper launches the disk-node child on dir and returns the
// process and its SAN address.
func startCrashHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestDiskNodeHelper$")
	cmd.Env = append(os.Environ(), "TANK_DISK_HELPER=1", "TANK_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "HELPER-ERR") {
			t.Fatalf("helper: %s", line)
		}
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, addr
		}
	}
	t.Fatalf("helper exited without printing ADDR")
	return nil, ""
}

func TestCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	dir := t.TempDir()
	helper, addr := startCrashHelper(t, dir)

	// Fence client 77 before the crash; assertion (c) checks the fence
	// survives the restart.
	admin := newSANClient(t, adminID, addr)
	if r := admin.call(&msg.FenceSet{Admin: adminID, Req: 1, Target: fencedID, On: true},
		func(m msg.Message) bool { _, ok := m.(*msg.FenceRes); return ok }); r == nil {
		t.Fatal("no FenceRes")
	} else if res := r.(*msg.FenceRes); res.Err != msg.OK {
		t.Fatalf("fence err = %v", res.Err)
	}
	fenced := newSANClient(t, fencedID, addr)
	if res := fenced.read(2, 0); res == nil || res.Err != msg.ErrFenced {
		t.Fatalf("pre-crash fenced read = %+v, want ErrFenced", res)
	}

	// Fire a 40-write burst without waiting for individual ACKs, collect
	// ACKs as they stream back, and SIGKILL the node once at least half
	// are in — writes genuinely in flight die with the process.
	const burst = 40
	for b := uint64(0); b < burst; b++ {
		admin.tr.Send(crashDiskID, &msg.DiskWrite{Client: adminID,
			Req: msg.ReqID(100 + b), Block: b, Data: crashPayload(b), Ver: b + 1})
	}
	acked := map[uint64]bool{}
	timeout := time.After(10 * time.Second)
collect:
	for len(acked) < burst/2 {
		select {
		case r := <-admin.replies:
			if res, ok := r.(*msg.DiskWriteRes); ok && res.Err == msg.OK && res.Req >= 100 {
				acked[uint64(res.Req-100)] = true
			}
		case <-timeout:
			break collect
		}
	}
	if len(acked) < 2 {
		t.Fatalf("only %d writes acknowledged before kill", len(acked))
	}
	helper.Process.Kill()
	helper.Wait()

	// Tear one ACKed block the way a crash mid-pwrite would: part of the
	// data overwritten, trailer (and hence CRC) stale. Assertion (a)
	// covers every other ACKed block; the torn one drives (b).
	var torn uint64
	for b := range acked {
		if b > torn {
			torn = b
		}
	}
	df, err := os.OpenFile(blockstore.DataPath(dir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.WriteAt(bytes.Repeat([]byte{0xFF}, 1000),
		blockstore.DataOffset(torn)); err != nil {
		t.Fatal(err)
	}
	df.Close()

	// Restart from the same directory.
	helper2, addr2 := startCrashHelper(t, dir)
	admin2 := newSANClient(t, adminID+1, addr2)

	// (a) Every ACKed write except the torn block reads back with the
	// exact contents and version stamp.
	req := msg.ReqID(1)
	for b := range acked {
		if b == torn {
			continue
		}
		res := admin2.read(req, b)
		req++
		if res == nil || res.Err != msg.OK {
			t.Fatalf("post-restart read of ACKed block %d = %+v", b, res)
		}
		want := crashPayload(b)
		if !bytes.Equal(res.Data[:len(want)], want) ||
			!bytes.Equal(res.Data[len(want):], make([]byte, disk.BlockSize-len(want))) {
			t.Fatalf("block %d: ACKed contents lost across crash", b)
		}
		if res.Ver != b+1 {
			t.Fatalf("block %d: ver = %d, want %d", b, res.Ver, b+1)
		}
	}

	// (b) The torn block is refused with a media error, not served stale.
	res := admin2.read(req, torn)
	req++
	if res == nil || res.Err != msg.ErrTorn {
		t.Fatalf("torn block read = %+v, want ErrTorn", res)
	}

	// (c) The client fenced before the crash is still rejected.
	fenced2 := newSANClient(t, fencedID, addr2)
	if res := fenced2.read(req, 0); res == nil || res.Err != msg.ErrFenced {
		t.Fatalf("post-restart fenced read = %+v, want ErrFenced", res)
	}

	helper2.Process.Kill()
	helper2.Wait()

	// The trace stream must show the recovery pass reporting the torn
	// block (EvDisk "torn" with the block number) and the fence replay.
	evs := readTrace(t, filepath.Join(dir, "trace.jsonl"))
	var sawTorn, sawReplay, sawRecovered bool
	for _, e := range evs {
		if e.Type != trace.EvDisk {
			continue
		}
		switch {
		case e.Note == "torn" && e.Block == torn:
			sawTorn = true
		case e.Note == "fence-replay" && e.Peer == fencedID:
			sawReplay = true
		case strings.HasPrefix(e.Note, "recovered "):
			sawRecovered = true
		}
	}
	if !sawRecovered || !sawTorn || !sawReplay {
		t.Fatalf("trace missing recovery evidence: recovered=%v torn=%v fence-replay=%v",
			sawRecovered, sawTorn, sawReplay)
	}

	// Belt and braces: reopen the store in-process and check the media
	// state directly (PeekBlock path), including the persisted fence.
	media, err := blockstore.Open(dir, blockstore.Options{Blocks: crashBlocks})
	if err != nil {
		t.Fatal(err)
	}
	defer media.Close()
	if !media.Fenced(fencedID) {
		t.Fatal("fence not persisted in media")
	}
	clock := sim.NewScheduler(1).NewClock(1, 0)
	d := disk.New(crashDiskID, disk.Config{Blocks: crashBlocks}, clock,
		func(msg.NodeID, msg.Message) {}, nil, disk.Observer{}, disk.WithMedia(media))
	for b := range acked {
		data, ver, ok := d.PeekBlock(b)
		if b == torn {
			if ok {
				t.Fatal("PeekBlock served the torn block")
			}
			continue
		}
		want := crashPayload(b)
		if !ok || ver != b+1 || !bytes.Equal(data[:len(want)], want) {
			t.Fatalf("PeekBlock(%d) = ok=%v ver=%d", b, ok, ver)
		}
	}
}

// readTrace parses a JSONL trace file, tolerating a final line torn by
// the kill.
func readTrace(t *testing.T, path string) []trace.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var evs []trace.Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		evs = append(evs, e)
	}
	return evs
}
