package rpcnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/disk"
	"repro/internal/msg"

	"os"
)

// Vectored-write crash harness: a disk node is SIGKILLed while a stream
// of DiskWriteV batches is in flight, then restarted from the same data
// directory. The group-commit contract under test:
//
//   - an ACKed batch is durable IN FULL — every block reads back with its
//     exact contents and version stamp (ack-implies-batch-durable);
//   - a batch torn by the crash degrades to per-block outcomes: damaged
//     blocks are refused (ErrTorn), never served as a mix of old and new
//     bytes, and unreached blocks simply read as their prior state.

// batchPayload assembles a DiskWriteV covering blocks [first, first+width).
func batchPayload(client msg.NodeID, req msg.ReqID, first uint64, width int) *msg.DiskWriteV {
	m := &msg.DiskWriteV{Client: client, Req: req, Data: make([]byte, width*disk.BlockSize)}
	for i := 0; i < width; i++ {
		b := first + uint64(i)
		m.Blocks = append(m.Blocks, msg.BlockVec{Block: b, Ver: b + 1})
		copy(m.Data[i*disk.BlockSize:], crashPayload(b))
	}
	return m
}

// readv issues one vectored read and waits for its reply.
func (c *sanClient) readv(req msg.ReqID, blocks []uint64) *msg.DiskReadVRes {
	r := c.call(&msg.DiskReadV{Client: c.tr.self, Req: req, Blocks: blocks},
		func(m msg.Message) bool {
			res, ok := m.(*msg.DiskReadVRes)
			return ok && res.Req == req
		})
	if r == nil {
		return nil
	}
	return r.(*msg.DiskReadVRes)
}

func TestCrashRestartVectoredBatchDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	const (
		width   = 8
		batches = 24 // 192 blocks, within crashBlocks
	)
	dir := t.TempDir()
	helper, addr := startCrashHelper(t, dir)
	writer := newSANClient(t, adminID, addr)

	// Fire every batch without waiting, then collect ACKs until at least
	// a third are in; batches genuinely mid-commit die with the process.
	for i := 0; i < batches; i++ {
		writer.tr.Send(crashDiskID, batchPayload(adminID, msg.ReqID(100+i), uint64(i*width), width))
	}
	ackedBatch := map[int]bool{}
	timeout := time.After(10 * time.Second)
collect:
	for len(ackedBatch) < batches/3 {
		select {
		case r := <-writer.replies:
			res, ok := r.(*msg.DiskWriteVRes)
			if !ok || res.Req < 100 || res.Err != msg.OK {
				continue
			}
			all := true
			for _, e := range res.Errs {
				if e != msg.OK {
					all = false
				}
			}
			if all {
				ackedBatch[int(res.Req - 100)] = true
			}
		case <-timeout:
			break collect
		}
	}
	if len(ackedBatch) < 2 {
		t.Fatalf("only %d batches acknowledged before kill", len(ackedBatch))
	}
	helper.Process.Kill()
	helper.Wait()

	// Tear one block INSIDE an ACKed batch, the way a crash between the
	// batch's data pwrites and its group-commit fsync could damage a slot
	// the kernel had not yet stabilized.
	tornBatch := -1
	for i := range ackedBatch {
		if i > tornBatch {
			tornBatch = i
		}
	}
	torn := uint64(tornBatch*width) + width/2
	df, err := os.OpenFile(blockstore.DataPath(dir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.WriteAt(bytes.Repeat([]byte{0xFF}, 1000), blockstore.DataOffset(torn)); err != nil {
		t.Fatal(err)
	}
	df.Close()

	helper2, addr2 := startCrashHelper(t, dir)
	reader := newSANClient(t, adminID+1, addr2)

	// (a) Ack-implies-batch-durable: every block of every ACKed batch
	// (minus the deliberately torn one) has its contents and version.
	req := msg.ReqID(1)
	for i := range ackedBatch {
		blocks := make([]uint64, width)
		for j := range blocks {
			blocks[j] = uint64(i*width + j)
		}
		res := reader.readv(req, blocks)
		req++
		if res == nil {
			t.Fatalf("no readv reply for batch %d", i)
		}
		for j, b := range blocks {
			if b == torn {
				// (b) The damaged slot degrades to ITS errno; the rest of
				// the batch still serves.
				if res.Errs[j] != msg.ErrTorn {
					t.Fatalf("torn block %d errno = %v, want ErrTorn", b, res.Errs[j])
				}
				continue
			}
			if res.Errs[j] != msg.OK {
				t.Fatalf("ACKed block %d errno = %v", b, res.Errs[j])
			}
			want := crashPayload(b)
			slot := res.Data[j*disk.BlockSize : (j+1)*disk.BlockSize]
			if !bytes.Equal(slot[:len(want)], want) ||
				!bytes.Equal(slot[len(want):], make([]byte, disk.BlockSize-len(want))) {
				t.Fatalf("block %d: ACKed batch contents lost across crash", b)
			}
			if res.Vers[j] != b+1 {
				t.Fatalf("block %d: ver = %d, want %d", b, res.Vers[j], b+1)
			}
		}
	}

	// (c) No half-truths anywhere: every block in the written range either
	// serves its exact payload with its exact version, reads as unwritten
	// (zeros, ver 0 — the batch never committed), or is refused as torn.
	for b := uint64(0); b < batches*width; b++ {
		res := reader.read(req, b)
		req++
		if res == nil {
			t.Fatalf("no reply reading block %d", b)
		}
		switch {
		case res.Err == msg.ErrTorn:
			// Detected damage is an honest answer.
		case res.Err != msg.OK:
			t.Fatalf("block %d err = %v", b, res.Err)
		case res.Ver == b+1:
			want := crashPayload(b)
			if !bytes.Equal(res.Data[:len(want)], want) {
				t.Fatalf("block %d claims ver %d with wrong contents", b, res.Ver)
			}
		case res.Ver == 0:
			if !bytes.Equal(res.Data, make([]byte, disk.BlockSize)) {
				t.Fatalf("block %d: ver 0 with non-zero contents", b)
			}
		default:
			t.Fatalf("block %d: impossible version %d", b, res.Ver)
		}
	}

	helper2.Process.Kill()
	helper2.Wait()
}
