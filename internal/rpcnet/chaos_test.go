package rpcnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestLiveChaosPartitionStealHealRejoin drives real TCP nodes through
// the full failure lifecycle using the runtime fault layer instead of
// killing connections: a control-network partition isolates a client
// holding dirty data, the client walks quiesce → flush → expiry
// unattended (its SAN stays healthy, so the phase-4 flush lands), the
// server's demand goes undelivered and the τ(1+ε) steal fires, the
// survivor reads the flushed data, and after Heal the isolated client
// rejoins — every step asserted from trace events alone.
func TestLiveChaosPartitionStealHealRejoin(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	tracer := trace.New(ring)
	cfg := liveCore()
	cfg.Tau = 1500 * time.Millisecond

	// One control-network fault plan shared by every node: the live
	// equivalent of the simulator's network-wide failure controls.
	ctrl := faultnet.New(1)
	lc := startLiveCfg(t, 2, cfg, WithTracer(tracer), WithFaults(ctrl, nil))
	lc.start(t, 0)
	lc.start(t, 1)
	isolated := msg.NodeID(10)

	h0 := lc.open(t, 0, "/chaos.txt", true, true)
	payload := []byte("dirty-at-partition")
	lc.write(t, 0, h0, 0, payload) // stays in the write-back cache

	// Partition: client 0 loses the control network in both directions.
	// Unlike closing the transport, the TCP connections stay up — only
	// the fault layer stops messages, exactly like a partitioned fabric.
	ctrl.Isolate(isolated)

	// The survivor demands the file; its open completes only after the
	// server's steal reassigns the lock, and the read must observe the
	// isolated client's phase-4 flush (no dirty data lost).
	h1 := lc.open(t, 1, "/chaos.txt", true, false)
	if got := lc.read(t, 1, h1, 0); !bytes.HasPrefix(got, payload) {
		t.Fatalf("survivor read %q, want the isolated client's flushed data %q", got[:24], payload)
	}

	// Heal the partition; the expired client's rejoin loop (still
	// retrying over the surviving TCP connections) now gets through.
	rejoined := make(chan msg.Epoch, 1)
	lc.clients[0].Do(func() {
		lc.clients[0].Client.OnRecovered = func(e msg.Epoch) { rejoined <- e }
	})
	ctrl.Heal()
	select {
	case <-rejoined:
	case <-time.After(10 * time.Second):
		t.Fatal("isolated client failed to rejoin after heal")
	}
	// The rejoined client reads the file afresh (cache was invalidated).
	h2 := lc.open(t, 0, "/chaos.txt", false, false)
	if got := lc.read(t, 0, h2, 0); !bytes.HasPrefix(got, payload) {
		t.Fatalf("rejoined client read %q, want %q", got[:24], payload)
	}

	events := ring.Events()

	// The isolated client walked the full Fig 4 state machine.
	phases := events.PhaseSequence(isolated)
	want := []string{"valid", "renewal", "suspect", "flush", "expired"}
	if !trace.HasSubsequence(phases, want) {
		t.Fatalf("client phase sequence %v missing subsequence %v", phases, want)
	}

	// Theorem 3.1 on live TCP under injected partition: the client's
	// expiry strictly precedes the server's lock steal.
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(1), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated))); err != nil {
		t.Fatalf("Theorem 3.1 ordering on live transport: %v", err)
	}

	// The phase-4 flush completed before expiry: no dirty data lost.
	if exp, ok := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire)); !ok || exp.Note == "dirty" {
		t.Fatalf("expiry event = %v (ok=%v), want a clean (flushed) expiry", exp, ok)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvFlushDone)),
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire))); err != nil {
		t.Fatalf("flush/expiry ordering: %v", err)
	}

	// The fault layer recorded the partition in the trace stream, with
	// the simulator's drop taxonomy, on both sides of the cut: the
	// client's keep-alives and the server's demand retries.
	blockedNote := trace.ByNote(simnet.DropBlocked.Note())
	if n := events.Count(trace.ByNode(isolated), blockedNote); n == 0 {
		t.Fatal("no injected drops recorded at the isolated client")
	}
	if n := events.Count(trace.ByNode(1), trace.ByPeer(isolated), blockedNote); n == 0 {
		t.Fatal("no injected drops recorded at the server toward the isolated client")
	}

	// After heal, the server granted the client a fresh epoch — and only
	// after the steal. (The first EvRejoin is the initial registration,
	// so compare against the last one.)
	steal, ok := events.First(trace.ByNode(1), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated))
	if !ok {
		t.Fatal("no steal recorded at the server")
	}
	rejoin, ok := events.Last(trace.ByNode(1), trace.ByType(trace.EvRejoin), trace.ByPeer(isolated))
	if !ok || rejoin.Seq <= steal.Seq {
		t.Fatalf("no post-steal rejoin: steal=%v last-rejoin=%v (ok=%v)", steal, rejoin, ok)
	}
}

// TestLiveFaultLatency: injected link latency delays delivery without
// dropping anything.
func TestLiveFaultLatency(t *testing.T) {
	faults := faultnet.New(1)
	faults.SetLink(1, 2, faultnet.Link{Delay: 150 * time.Millisecond})

	got := make(chan time.Time, 1)
	recv := New(2, nil, func(msg.Envelope) { got <- time.Now() })
	go recv.Run()
	defer recv.Close()
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(1, map[msg.NodeID]string{2: addr.String()}, func(msg.Envelope) {})
	tr.SetFaults(faults)
	go tr.Run()
	defer tr.Close()

	start := time.Now()
	tr.Send(2, &msg.KeepAlive{ReqHeader: msg.ReqHeader{Client: 1, Req: 1}})
	select {
	case at := <-got:
		if d := at.Sub(start); d < 150*time.Millisecond {
			t.Fatalf("delivered after %v, want >= 150ms of injected latency", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message with injected latency never delivered")
	}
}
