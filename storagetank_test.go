package storagetank

import (
	"testing"
	"time"

	"repro/internal/msg"
)

// Facade-level tests: what a downstream user of the public API sees.

func TestFacadeQuickstartFlow(t *testing.T) {
	cl := NewClusterWith()
	cl.Start()
	h, attr := cl.MustOpen(0, "/api.txt", true, true)
	if attr.Ino == 0 {
		t.Fatal("no inode")
	}
	payload := make([]byte, BlockSize)
	copy(payload, "through the facade")
	if errno := cl.Write(0, h, 0, payload); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatal(errno)
	}
	h1, _, errno := cl.Open(1, "/api.txt", false, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || string(data[:18]) != "through the facade" {
		t.Fatalf("read: %v", errno)
	}
	cl.Checker.FinalCheck()
	if len(cl.Checker.Violations()) != 0 {
		t.Fatalf("violations: %v", cl.Checker.Violations())
	}
}

func TestFacadePolicies(t *testing.T) {
	if len(AllPolicies()) < 9 {
		t.Fatalf("policies = %d", len(AllPolicies()))
	}
	if StorageTank().Name != "storage-tank" {
		t.Fatal("wrong default policy")
	}
	for _, p := range AllPolicies() {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15", len(exps))
	}
	e, ok := ExperimentByID("F3")
	if !ok {
		t.Fatal("F3 missing")
	}
	r := e.Run(ExperimentParams{Seed: 3, Quick: true})
	if r.Metrics["violations.eps=0.05"] != 0 {
		t.Fatal("theorem violated through the facade")
	}
}

func TestFacadeWorkload(t *testing.T) {
	cl := NewClusterWith()
	cl.Start()
	cfg := DefaultWorkload()
	cfg.Files = 4
	cfg.BlocksPerFile = 2
	PopulateWorkload(cl, cfg)
	r := NewWorkloadRunner(cl, 0, cfg, 9)
	r.Start()
	cl.RunFor(10 * time.Second)
	if r.Ops < 20 {
		t.Fatalf("runner did %d ops", r.Ops)
	}
}

func TestFacadePhaseNames(t *testing.T) {
	phases := []Phase{PhaseNone, Phase1Valid, Phase2Renew, Phase3Quiet, Phase4Flush, PhaseExpired}
	seen := map[string]bool{}
	for _, p := range phases {
		if seen[p.String()] {
			t.Fatalf("duplicate phase name %q", p)
		}
		seen[p.String()] = true
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
}
