// Servercluster: the paper's Figure 1 shows a CLUSTER of servers; §4
// argues that one lease per (client, server) pair matches real failures.
// This example shards a namespace over three servers, partitions a single
// client↔server link, and shows that exactly one shard's lease runs down
// while the others never notice.
//
//	go run ./examples/servercluster
package main

import (
	"fmt"
	"time"

	storagetank "repro"
	"repro/internal/msg"
)

func main() {
	const servers = 3
	inst := storagetank.NewShardClusterWith(
		storagetank.WithShards(servers),
		storagetank.WithPlacement(storagetank.SubtreePlacement{
			Prefixes: map[string]int{"/s0": 0, "/s1": 1, "/s2": 2},
		}))
	inst.Start()
	tau := storagetank.Resolve().Shard.Core.Tau
	fmt.Printf("cluster up: %d servers, namespace shards /s0 /s1 /s2, τ=%v\n\n",
		servers, tau)

	// Node 0 works across all three shards.
	handles := make([]msg.Handle, servers)
	for i := range handles {
		path := fmt.Sprintf("/s%d/data", i)
		handles[i] = inst.MustOpen(0, path, true, true)
		inst.Write(0, handles[i], 0, make([]byte, storagetank.BlockSize))
		fmt.Printf("node 0 holds an exclusive lock on %s (lease with server %d)\n", path, i+1)
	}

	fmt.Println("\npartitioning ONLY the node0 ↔ server1 control link...")
	inst.IsolatePair(0, 0)

	for round := 1; round <= 6; round++ {
		inst.RunFor(2 * time.Second)
		fmt.Printf("t+%2ds  lease phases per shard: %v\n", round*2, inst.LeasePhases(0))
	}

	fmt.Println("\nwrites during the partition:")
	for i := range handles {
		errno := inst.Write(0, handles[i], 1, make([]byte, storagetank.BlockSize))
		fmt.Printf("  shard /s%d: %v\n", i, errno)
	}

	inst.HealAll()
	inst.RunFor(2 * tau)
	inst.Sync(0)
	fmt.Printf("\nafter heal: phases %v, violations across all shards: %d\n",
		inst.LeasePhases(0), len(inst.FinalCheck()))
}
