// Partition: the paper's Figure 2 scenario, told four times — once per
// recovery policy. A client holding a write lock with dirty data is cut
// off the control network while the SAN keeps working. Watch who gets the
// lock, when, and what it costs in consistency.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"time"

	storagetank "repro"
	"repro/internal/checker"
	"repro/internal/msg"
)

func main() {
	fmt.Println("Fig 2: client C1 holds a write lock; the control network partitions;")
	fmt.Println("client C2 asks to write the same file. One policy at a time:")
	fmt.Println()
	for _, pol := range []storagetank.Policy{
		storagetank.HonorLocks(),
		storagetank.NaiveSteal(),
		storagetank.FenceOnly(),
		storagetank.StorageTank(),
	} {
		runScenario(pol)
	}
}

func runScenario(pol storagetank.Policy) {
	cl := storagetank.NewClusterWith(storagetank.WithPolicy(pol))
	cl.Start()
	tau := storagetank.Resolve().Cluster.Core.Tau

	// C1 (client 0): committed data on block 0, dirty data on block 1.
	h0, _ := cl.MustOpen(0, "/shared", true, true)
	cl.Write(0, h0, 0, block('A'))
	cl.Sync(0)
	cl.Write(0, h0, 1, block('B')) // dirty: at risk

	cl.IsolateClient(0) // the partition of Fig 2: control network only

	// C2 (client 1) wants to write block 0.
	h1, _, _ := cl.Open(1, "/shared", true, false)
	granted := false
	start := cl.Sched.Now()
	var wait time.Duration
	cl.Clients[1].Write(h1, 0, block('C'), func(e msg.Errno) {
		granted = e == msg.OK
		wait = cl.Sched.Now().Sub(start)
	})
	deadline := cl.Sched.Now().Add(3 * tau)
	cl.Sched.RunWhile(func() bool { return !granted && !cl.Sched.Now().After(deadline) })

	// The isolated client's local processes keep reading their cache —
	// unless the policy stops them.
	cl.Read(0, h0, 0)

	// Heal, settle, flush, audit.
	cl.HealControl()
	cl.RunFor(2 * tau)
	for i := range cl.Clients {
		cl.Sync(i)
	}
	cl.Checker.FinalCheck()

	fmt.Printf("%-14s", pol.Name)
	if granted {
		fmt.Printf(" C2 granted after %-8v", wait.Round(10*time.Millisecond))
	} else {
		fmt.Printf(" C2 still waiting (> %v)  ", 3*tau)
	}
	fmt.Printf(" conflicts=%d stale=%d lost=%d\n",
		cl.Checker.Count(checker.ConcurrentConflict),
		cl.Checker.Count(checker.StaleRead),
		cl.Checker.Count(checker.LostUpdate))
}

func block(b byte) []byte {
	buf := make([]byte, storagetank.BlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}
