// Failover: a narrated trace of the four-phase lease period (Fig 4). An
// isolated client walks from valid → renewal → suspect → flush → expired,
// writing its dirty data to the SAN on the way out; the server steals at
// τ(1+ε) and the surviving client takes over; after the partition heals,
// the isolated client rejoins with a fresh epoch.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	storagetank "repro"
	"repro/internal/core"
	"repro/internal/msg"
)

func main() {
	cl := storagetank.NewClusterWith()
	cl.Start()
	cfg := storagetank.Resolve().Cluster.Core
	tau := cfg.Tau
	c0 := cl.Clients[0]

	var isoAt = func() time.Duration { return time.Duration(cl.Sched.Now()) }
	var t0 time.Duration
	c0.OnPhase = func(from, to core.Phase) {
		fmt.Printf("  %7v  lease %-8s → %-8s (dirty pages: %d)\n",
			(isoAt() - t0).Round(time.Millisecond), from, to, c0.Cache().TotalDirty())
	}
	c0.OnRecovered = func(e msg.Epoch) {
		fmt.Printf("  %7v  client 0 rejoined with epoch %d\n", (isoAt() - t0).Round(time.Millisecond), e)
	}

	fmt.Printf("τ=%v, phases at %.2f/%.2f/%.2fτ, steal at τ(1+ε)=%v\n\n",
		tau, cfg.P1End, cfg.P2End, cfg.P3End, cfg.StealDelay())

	h0, _ := cl.MustOpen(0, "/journal", true, true)
	cl.Write(0, h0, 0, make([]byte, storagetank.BlockSize))
	cl.Sync(0)
	data := make([]byte, storagetank.BlockSize)
	copy(data, "precious dirty data")
	cl.Write(0, h0, 0, data)

	fmt.Println("client 0 holds an exclusive lock with dirty data; isolating it now:")
	t0 = isoAt()
	cl.IsolateClient(0)

	// The survivor contends for the file.
	h1, _, _ := cl.Open(1, "/journal", true, false)
	granted := false
	cl.Clients[1].Write(h1, 0, make([]byte, storagetank.BlockSize), func(e msg.Errno) {
		granted = true
		fmt.Printf("  %7v  survivor granted the exclusive lock (server stole at τ(1+ε))\n",
			(isoAt() - t0).Round(time.Millisecond))
	})
	deadline := cl.Sched.Now().Add(2 * tau)
	cl.Sched.RunWhile(func() bool { return !granted && !cl.Sched.Now().After(deadline) })

	// Verify the isolated client's phase-4 flush reached the disk before
	// the steal: the survivor reads the block it did NOT overwrite.
	fmt.Println("\nhealing the partition:")
	cl.HealControl()
	cl.RunFor(tau)

	cl.Sync(1) // flush the survivor before auditing
	cl.Checker.FinalCheck()
	fmt.Printf("\nconsistency violations across the whole episode: %d\n", len(cl.Checker.Violations()))
	fmt.Printf("keep-alives the isolated client sent in phase 2: %v\n",
		cl.Reg.CounterValue("client.n10.lease.keepalives"))
	fmt.Printf("dirty pages discarded at expiry (would be lost updates): %v\n",
		cl.Reg.CounterValue("client.n10.dirty_discarded"))
}
