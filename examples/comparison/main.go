// Comparison: run the head-to-head experiments against the prior systems
// the paper discusses — V per-object leases (§4), Frangipani heartbeats
// (§5), NFS polling (§5), GFS dlocks (§5) — and print the tables.
//
//	go run ./examples/comparison           # quick sweeps
//	go run ./examples/comparison -full     # the full EXPERIMENTS.md scale
package main

import (
	"flag"
	"fmt"

	storagetank "repro"
)

func main() {
	full := flag.Bool("full", false, "full-scale sweeps (slower)")
	flag.Parse()

	params := storagetank.ExperimentParams{Seed: 1, Quick: !*full}
	for _, id := range []string{"T1", "T2", "T4"} {
		e, ok := storagetank.ExperimentByID(id)
		if !ok {
			panic("missing experiment " + id)
		}
		fmt.Println(e.Run(params).String())
	}
	fmt.Println("T1: the paper's protocol is the only design with zero lease traffic,")
	fmt.Println("    zero server lease state, and zero server lease work while active.")
	fmt.Println("T2: recovery latency is the price — it scales with τ(1+ε).")
	fmt.Println("T4: logical locks amortize; disk-enforced dlocks pay per operation.")
}
