// Quickstart: build a simulated Storage Tank installation, write a file
// on one client, read it from another (watching the lock demand and the
// dirty-data flush happen underneath), and print the protocol's costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	storagetank "repro"
)

func main() {
	// A 3-client, 2-disk installation of the paper's Figure 1: clients
	// and server on the control network, clients and disks on the SAN,
	// per-node clocks drifting within the rate bound ε. The zero-option
	// call uses the defaults; add storagetank.With* options to change
	// seeds, sizes, policy, or protocol parameters.
	cl := storagetank.NewClusterWith()
	cl.Start()
	cfg := storagetank.Resolve().Cluster.Core
	fmt.Printf("installation up: %d clients, %d disks, τ=%v, ε=%g\n\n",
		len(cl.Clients), len(cl.Disks), cfg.Tau, cfg.Bound.Eps)

	// Each client's SyncClient wraps the event-driven protocol client in
	// plain blocking calls; underneath, every call pumps the simulator.
	c0 := cl.SyncClient(0)
	c1 := cl.SyncClient(1)

	// Client 0 creates and writes a file. The write is WRITE-BACK: it
	// completes into the client cache under an exclusive data lock.
	h0, _, err := c0.Open("/hello.txt", true, true)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	payload := []byte("hello, network attached storage")
	if err := c0.WriteAt(h0, 0, payload); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("client 0 wrote %d bytes (dirty pages in cache: %d)\n",
		len(payload), cl.Clients[0].Cache().TotalDirty())

	// Client 1 reads the same file. The server demands client 0's
	// exclusive lock down to shared; client 0 flushes its dirty page to
	// the SAN first, so client 1 reads the newest data from the disk.
	h1, _, err := c1.Open("/hello.txt", false, false)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	data, err := c1.ReadAt(h1, 0)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("client 1 read:  %q\n", data[:len(payload)])
	fmt.Printf("client 0 dirty pages after the demand: %d\n\n", cl.Clients[0].Cache().TotalDirty())

	// Let the installation idle for a while: lock and metadata traffic
	// stops, so the clients preserve their caches with keep-alives.
	cl.RunFor(30 * time.Second)

	fmt.Println("protocol costs so far:")
	fmt.Printf("  keep-alive messages:            %d (idle clients only)\n",
		cl.Reg.CounterValue("net.control.sent.keepalive"))
	fmt.Printf("  server lease operations:        %d\n",
		cl.Reg.CounterValue("server.authority.ops"))
	fmt.Printf("  server lease memory:            %d bytes\n",
		cl.Server.Authority().StateBytes())
	fmt.Printf("  file data moved through server: %d bytes\n",
		cl.Reg.CounterValue("server.data_bytes"))

	// And the oracle confirms the run was sequentially consistent.
	cl.Checker.FinalCheck()
	fmt.Printf("  consistency violations:         %d\n", len(cl.Checker.Violations()))
}
