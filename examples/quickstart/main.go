// Quickstart: build a simulated Storage Tank installation, write a file
// on one client, read it from another (watching the lock demand and the
// dirty-data flush happen underneath), and print the protocol's costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	storagetank "repro"
	"repro/internal/msg"
)

func main() {
	// A 3-client, 2-disk installation of the paper's Figure 1: clients
	// and server on the control network, clients and disks on the SAN,
	// per-node clocks drifting within the rate bound ε.
	opts := storagetank.DefaultOptions()
	cl := storagetank.NewCluster(opts)
	cl.Start()
	fmt.Printf("installation up: %d clients, %d disks, τ=%v, ε=%g\n\n",
		len(cl.Clients), len(cl.Disks), opts.Core.Tau, opts.Core.Bound.Eps)

	// Client 0 creates and writes a file. The write is WRITE-BACK: it
	// completes into the client cache under an exclusive data lock.
	h0, _ := cl.MustOpen(0, "/hello.txt", true, true)
	payload := []byte("hello, network attached storage")
	if errno := cl.Write(0, h0, 0, payload); errno != msg.OK {
		log.Fatalf("write: %v", errno)
	}
	fmt.Printf("client 0 wrote %d bytes (dirty pages in cache: %d)\n",
		len(payload), cl.Clients[0].Cache().TotalDirty())

	// Client 1 reads the same file. The server demands client 0's
	// exclusive lock down to shared; client 0 flushes its dirty page to
	// the SAN first, so client 1 reads the newest data from the disk.
	h1, _ := cl.MustOpen(1, "/hello.txt", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK {
		log.Fatalf("read: %v", errno)
	}
	fmt.Printf("client 1 read:  %q\n", data[:len(payload)])
	fmt.Printf("client 0 dirty pages after the demand: %d\n\n", cl.Clients[0].Cache().TotalDirty())

	// Let the installation idle for a while: lock and metadata traffic
	// stops, so the clients preserve their caches with keep-alives.
	cl.RunFor(30 * time.Second)

	fmt.Println("protocol costs so far:")
	fmt.Printf("  keep-alive messages:            %d (idle clients only)\n",
		cl.Reg.CounterValue("net.control.sent.keepalive"))
	fmt.Printf("  server lease operations:        %d\n",
		cl.Reg.CounterValue("server.authority.ops"))
	fmt.Printf("  server lease memory:            %d bytes\n",
		cl.Server.Authority().StateBytes())
	fmt.Printf("  file data moved through server: %d bytes\n",
		cl.Reg.CounterValue("server.data_bytes"))

	// And the oracle confirms the run was sequentially consistent.
	cl.Checker.FinalCheck()
	fmt.Printf("  consistency violations:         %d\n", len(cl.Checker.Violations()))
}
