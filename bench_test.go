package storagetank

// The benchmark harness: one Benchmark per figure/table of the paper
// (DESIGN.md §4). Each runs the corresponding experiment end-to-end on
// the deterministic simulator and reports its headline numbers as
// benchmark metrics, so `go test -bench=. -benchmem` regenerates the
// entire evaluation. Micro-benchmarks for the protocol hot paths follow.

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchExperiment runs experiment id b.N times and surfaces the chosen
// metrics in the benchmark output.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(experiments.Params{Seed: int64(i + 1), Quick: true})
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkF1Architecture — Fig 1 / §1.1: direct SAN access vs the
// function-shipping server.
func BenchmarkF1Architecture(b *testing.B) {
	benchExperiment(b, "F1", "speedup_at_max_clients", "funcship.server_data_bytes")
}

// BenchmarkF2Partition — Fig 2 / §2: availability and safety across
// recovery policies under a control-network partition.
func BenchmarkF2Partition(b *testing.B) {
	benchExperiment(b, "F2", "storage-tank.lock_wait_secs", "fence-only.violations")
}

// BenchmarkF3Renewal — Fig 3 / Thm 3.1: renewal from tC1 under
// rate-synchronized clocks.
func BenchmarkF3Renewal(b *testing.B) {
	benchExperiment(b, "F3", "violations.eps=0.05", "violations.outside_bound")
}

// BenchmarkF4Phases — Fig 4 / §3.2: the four-phase lease period of an
// isolated client.
func BenchmarkF4Phases(b *testing.B) {
	benchExperiment(b, "F4", "dirty_at_expiry", "steal_after_expiry_secs")
}

// BenchmarkF5NACK — Fig 5 / §3.3: NACK vs silent-ignore.
func BenchmarkF5NACK(b *testing.B) {
	benchExperiment(b, "F5", "nack.msgs_after_heal", "ignore.msgs_after_heal")
}

// BenchmarkT1Overhead — §3-5: lease overhead vs V leases, Frangipani
// heartbeats, NFS polling.
func BenchmarkT1Overhead(b *testing.B) {
	benchExperiment(b, "T1",
		"storage-tank.active_lease_msgs_per_tau",
		"frangipani.active_lease_msgs_per_tau",
		"v-leases.server_lease_bytes_max")
}

// BenchmarkT2Availability — §1.2/§2: unavailability window vs τ.
func BenchmarkT2Availability(b *testing.B) {
	benchExperiment(b, "T2", "storage-tank.wait_secs.tau=5s", "storage-tank.wait_secs.tau=20s")
}

// BenchmarkT3Safety — §2.1: violations under failure injection.
func BenchmarkT3Safety(b *testing.B) {
	benchExperiment(b, "T3",
		"storage-tank.total_violations",
		"fence-only.total_violations",
		"naive-steal.total_violations")
}

// BenchmarkT4Dlock — §5: GFS dlocks vs logical locks.
func BenchmarkT4Dlock(b *testing.B) {
	benchExperiment(b, "T4", "gfs-dlock.san_msgs_per_op", "storage-tank.san_msgs_per_op")
}

// BenchmarkT5Opportunistic — §3.1: keep-alives vs client activity.
func BenchmarkT5Opportunistic(b *testing.B) {
	benchExperiment(b, "T5")
}

// BenchmarkT6SlowClient — §6: the fencing backstop against clocks beyond
// the rate bound.
func BenchmarkT6SlowClient(b *testing.B) {
	benchExperiment(b, "T6", "nofence.late_write_corrupted", "fence.fenced_rejections")
}

// BenchmarkT7ServerRecovery — §6: lock reassertion after a server
// failure vs the full lease recovery.
func BenchmarkT7ServerRecovery(b *testing.B) {
	benchExperiment(b, "T7", "reassert.outage_secs", "norecover.outage_secs")
}

// BenchmarkT8ShardCluster — §4/Fig 1: per-pair lease granularity across a
// server cluster.
func BenchmarkT8ShardCluster(b *testing.B) {
	benchExperiment(b, "T8", "unaffected_shard_errors", "partitioned_shard_errors")
}

// BenchmarkA1PhaseBoundaries — ablation of the phase split (DESIGN §5).
func BenchmarkA1PhaseBoundaries(b *testing.B) {
	benchExperiment(b, "A1", "dirty_at_expiry.p3=0.98")
}

// BenchmarkA2RetryPolicy — ablation of failure detection under loss.
func BenchmarkA2RetryPolicy(b *testing.B) {
	benchExperiment(b, "A2", "false_suspicions.retries=0", "false_suspicions.retries=3")
}

// --- protocol hot-path micro-benchmarks -------------------------------------

// BenchmarkAuthorityAllow measures the server's entire per-message lease
// cost during normal operation: one lookup in an empty map.
func BenchmarkAuthorityAllow(b *testing.B) {
	s := sim.NewScheduler(1)
	auth := core.NewAuthority(core.DefaultConfig(), s.NewClock(1, 0), nopSteal{}, core.Env{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !auth.Allow(msg.NodeID(i%1024 + 2)) {
			b.Fatal("refused")
		}
	}
}

type nopSteal struct{}

func (nopSteal) StealLocks(msg.NodeID) {}

// BenchmarkLeaseRenewal measures the client-side cost of an opportunistic
// renewal (timer re-arm included).
func BenchmarkLeaseRenewal(b *testing.B) {
	s := sim.NewScheduler(1)
	clock := s.NewClock(1, 0)
	lease := core.NewLeaseClient(core.DefaultConfig(), clock, nopActions{}, core.Env{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease.Renewed(sim.Time(i + 1)) // strictly increasing tC1
	}
}

type nopActions struct{}

func (nopActions) SendKeepAlive()              {}
func (nopActions) Quiesce()                    {}
func (nopActions) Flush(done func())           { done() }
func (nopActions) Expired()                    {}
func (nopActions) PhaseChange(_, _ core.Phase) {}

// BenchmarkSchedulerEvents measures the simulator's event throughput.
func BenchmarkSchedulerEvents(b *testing.B) {
	s := sim.NewScheduler(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, fn)
		}
	}
	b.ResetTimer()
	s.After(0, fn)
	s.Run()
}

// BenchmarkReplyCache measures at-most-once admission on the request
// fast path.
func BenchmarkReplyCache(b *testing.B) {
	rc := core.NewReplyCache(128, nil, "")
	reply := &msg.Reply{Status: msg.ACK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := msg.ReqID(i)
		if d, _ := rc.Admit(3, id); d != core.Execute {
			b.Fatal("dup")
		}
		rc.Complete(3, id, reply)
	}
}

// BenchmarkClusterWritePath measures a full client write through the
// simulated installation (lock cached, cache hit: the common case).
func BenchmarkClusterWritePath(b *testing.B) {
	cl := NewClusterWith(WithoutChecker())
	cl.Start()
	h, _ := cl.MustOpen(0, "/bench", true, true)
	data := make([]byte, BlockSize)
	if errno := cl.Write(0, h, 0, data); errno != msg.OK {
		b.Fatal(errno)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errno := cl.Write(0, h, 0, data); errno != msg.OK {
			b.Fatal(errno)
		}
	}
}

// BenchmarkEndToEndSimSecond measures how fast the simulator advances one
// simulated second of a busy 3-client installation.
func BenchmarkEndToEndSimSecond(b *testing.B) {
	cl := NewClusterWith(WithoutChecker())
	cl.Start()
	PopulateWorkload(cl, quickWorkload())
	for i := range cl.Clients {
		NewWorkloadRunner(cl, i, quickWorkload(), int64(i)).Start()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.RunFor(time.Second)
	}
}

// --- vectored write-back benchmarks -----------------------------------------

// benchFlushDrain measures a client draining 64 dirty pages to the SAN:
// how many SAN messages one flush costs and how long the drain takes in
// simulated time. batch=0 is the default vectored write-back; batch=1
// restores the legacy per-page path the vectoring replaced.
func benchFlushDrain(b *testing.B, batch int) {
	const dirtyPages = 64
	cl := NewClusterWith(WithoutChecker(), WithFlushBatch(batch))
	cl.Start()
	sc := cl.SyncClient(0)
	h, _, err := sc.Open("/drain", true, true)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, BlockSize)
	var msgs, drain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < dirtyPages; p++ {
			if err := sc.WriteAt(h, uint64(p), data); err != nil {
				b.Fatal(err)
			}
		}
		before := cl.Reg.CounterValue("net.san.sent.san-io")
		start := cl.Sched.Now()
		if err := sc.SyncAll(); err != nil {
			b.Fatal(err)
		}
		msgs += float64(cl.Reg.CounterValue("net.san.sent.san-io") - before)
		drain += float64(cl.Sched.Now().Sub(start)) / float64(time.Millisecond)
	}
	b.ReportMetric(msgs/float64(b.N), "san_msgs/flush")
	b.ReportMetric(drain/float64(b.N), "sim_drain_ms")
}

// BenchmarkFlushDrain64Batched — vectored write-back (the default): the
// 64 dirty pages coalesce into one DiskWriteV per disk per 32-page
// window, each served under a single disk service slot.
func BenchmarkFlushDrain64Batched(b *testing.B) { benchFlushDrain(b, 0) }

// BenchmarkFlushDrain64PerPage — the pre-vectoring path (FlushBatch=1):
// one DiskWrite and one service slot per page.
func BenchmarkFlushDrain64PerPage(b *testing.B) { benchFlushDrain(b, 1) }

// benchGroupCommit measures the durable half of the same flush: 64
// blocks written to file-backed media, reporting fsyncs per flush.
// Vectored batches group-commit (two fsyncs per batch); per-block
// writes pay two fsyncs each.
func benchGroupCommit(b *testing.B, batched bool) {
	const blocks = 64
	reg := NewStatsRegistry()
	media, err := OpenFileMedia(b.TempDir(), MediaOptions{
		Blocks: 1 << 10, Registry: reg, StatsPrefix: "media.",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer media.Close()
	data := make([]byte, BlockSize)
	batch := make([]MediaBlockWrite, blocks)
	var fsyncs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := reg.CounterValue("media.fsyncs")
		ver := uint64(i + 1)
		if batched {
			for j := range batch {
				batch[j] = MediaBlockWrite{Block: uint64(j), Data: data, Ver: ver}
			}
			for _, err := range media.WriteV(batch) {
				if err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for j := 0; j < blocks; j++ {
				if err := media.Write(uint64(j), data, ver); err != nil {
					b.Fatal(err)
				}
			}
		}
		fsyncs += float64(reg.CounterValue("media.fsyncs") - before)
	}
	b.ReportMetric(fsyncs/float64(b.N), "fsyncs/flush")
}

// BenchmarkGroupCommit64Batched — one WriteV of 64 blocks: stage all,
// then one data fsync and one metadata fsync for the whole batch.
func BenchmarkGroupCommit64Batched(b *testing.B) { benchGroupCommit(b, true) }

// BenchmarkGroupCommit64PerBlock — 64 scalar Writes: two fsyncs each.
func BenchmarkGroupCommit64PerBlock(b *testing.B) { benchGroupCommit(b, false) }

// --- content-addressed cache & read-ahead benchmarks ------------------------

// benchSeqScan measures a reader's cold 32-block sequential scan,
// reporting the SAN messages one scan costs. With read-ahead the blocks
// arrive in vectored batches; without it every block is a scalar
// round trip. The simulator makes the number exact, so the bench gate
// holds it to ±5%.
func benchSeqScan(b *testing.B, prefetch int) {
	const blocks = 32
	cl := NewClusterWith(WithoutChecker(), WithPrefetch(prefetch))
	cl.Start()
	sc := cl.SyncClient(0)
	h, _, err := sc.Open("/seq", true, true)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, BlockSize)
	for i := 0; i < blocks; i++ {
		binary.BigEndian.PutUint64(data, uint64(i))
		if err := sc.WriteAt(h, uint64(i), data); err != nil {
			b.Fatal(err)
		}
	}
	if err := sc.SyncAll(); err != nil {
		b.Fatal(err)
	}
	attr, err := sc.Lookup("/seq")
	if err != nil {
		b.Fatal(err)
	}
	_ = sc.ReleaseLock(attr.Ino)

	var msgs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A cold scan each iteration: drop the reader's cache and reopen
		// so the object map is refetched.
		cl.Clients[1].Cache().InvalidateAll()
		hr, _ := cl.MustOpen(1, "/seq", false, false)
		before := cl.Reg.CounterValue("net.san.sent.san-io")
		for j := 0; j < blocks; j++ {
			got, errno := cl.Read(1, hr, uint64(j))
			if errno != msg.OK {
				b.Fatal(errno)
			}
			if binary.BigEndian.Uint64(got) != uint64(j) {
				b.Fatalf("block %d content wrong", j)
			}
		}
		msgs += float64(cl.Reg.CounterValue("net.san.sent.san-io") - before)
	}
	b.ReportMetric(msgs/float64(b.N), "san_reads/scan")
}

// BenchmarkSeqScanPrefetch — the default read-ahead window (3): the scan
// rides vectored batches.
func BenchmarkSeqScanPrefetch(b *testing.B) { benchSeqScan(b, 3) }

// BenchmarkSeqScanNoPrefetch — read-ahead disabled: one scalar SAN read
// per block, the pre-prefetch baseline.
func BenchmarkSeqScanNoPrefetch(b *testing.B) { benchSeqScan(b, 0) }

// BenchmarkSharedHotFile runs the shared-hot-file workload (readers
// scanning, one writer churning a small content alphabet) and reports
// how much of the readers' working set the content-addressed cache
// dedups away. The settle scan makes the ratio exact:
// 16 pages sharing 4 contents → 0.75 of the bytes saved.
func BenchmarkSharedHotFile(b *testing.B) {
	cl := NewClusterWith(WithoutChecker())
	cl.Start()
	cfg := workload.DefaultHotFile()
	cfg.Readers = []int{1, 2}
	workload.PopulateHotFile(cl, cfg)
	hf := workload.NewHotFile(cl, cfg)
	hf.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.RunFor(time.Second)
	}
	b.StopTimer()
	hf.Stop()

	// Settle: a final cold scan on reader 1 pins the dedup ratio at a
	// deterministic instant.
	c1 := cl.Clients[1].Cache()
	c1.InvalidateAll()
	hr, _ := cl.MustOpen(1, workload.HotFilePath, false, false)
	for j := 0; j < cfg.Blocks; j++ {
		if _, errno := cl.Read(1, hr, uint64(j)); errno != msg.OK {
			b.Fatal(errno)
		}
	}
	pages := float64(c1.ResidentPages())
	bytes := float64(c1.ResidentBytes())
	if pages > 0 {
		b.ReportMetric(1-bytes/(pages*float64(BlockSize)), "dedup_bytes_saved_ratio")
	}
	hits := float64(cl.Reg.CounterValue("client.n11.cache.prefetch_hits"))
	wasted := float64(cl.Reg.CounterValue("client.n11.cache.prefetch_wasted"))
	if hits+wasted > 0 {
		b.ReportMetric(hits/(hits+wasted), "prefetch_hit_ratio")
	}
}

// BenchmarkCachedReadHit measures the cached-read fast path end to end
// (warm page, shared lock held): the allocation count here is gated, so
// the hot path can't quietly regress.
func BenchmarkCachedReadHit(b *testing.B) {
	cl := NewClusterWith(WithoutChecker())
	cl.Start()
	h, _ := cl.MustOpen(0, "/hit", true, true)
	data := make([]byte, BlockSize)
	if errno := cl.Write(0, h, 0, data); errno != msg.OK {
		b.Fatal(errno)
	}
	if _, errno := cl.Read(0, h, 0); errno != msg.OK {
		b.Fatal(errno)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errno := cl.Read(0, h, 0); errno != msg.OK {
			b.Fatal(errno)
		}
	}
}

func quickWorkload() WorkloadConfig {
	cfg := DefaultWorkload()
	cfg.Files = 8
	cfg.BlocksPerFile = 4
	cfg.MeanThink = 20 * time.Millisecond
	return cfg
}
