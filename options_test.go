package storagetank

import (
	"bytes"
	"testing"
	"time"
)

// Tests of the unified With* construction vocabulary: the same option
// list must configure the simulated cluster, the simulated server
// cluster, and live TCP nodes.

func TestUnifiedOptionsProjectOntoCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tau = 5 * time.Second
	tr := NewTracer(NewTraceRing(64))
	b := Resolve(
		WithSeed(7),
		WithClients(2),
		WithDisks(1),
		WithDiskBlocks(1<<10),
		WithProtocol(cfg),
		WithPolicy(Frangipani()),
		WithFlushInterval(250*time.Millisecond),
		WithFlushBatch(4),
		WithCacheMaxPages(16),
		WithClockSkew(false),
		WithDiskService(time.Millisecond),
		WithoutChecker(),
		WithGracePeriod(2*time.Second),
		WithTracer(tr),
	)
	c := b.Cluster
	switch {
	case c.Seed != 7, c.Clients != 2, c.Disks != 1, c.DiskBlocks != 1<<10:
		t.Fatalf("topology knobs lost: %+v", c)
	case c.Core.Tau != 5*time.Second:
		t.Fatalf("protocol config lost: τ=%v", c.Core.Tau)
	case c.Policy.Name != Frangipani().Name:
		t.Fatalf("policy lost: %q", c.Policy.Name)
	case c.FlushInterval != 250*time.Millisecond, c.FlushBatch != 4, c.CacheMaxPages != 16:
		t.Fatalf("client knobs lost: %+v", c)
	case c.ClockSkew, !c.NoChecker, c.GracePeriod != 2*time.Second:
		t.Fatalf("toggles lost: %+v", c)
	case c.DiskService != time.Millisecond, c.Tracer != tr:
		t.Fatalf("disk/tracer knobs lost")
	}
	// The same options project onto the sharded surface where they
	// apply.
	m := b.Shard
	if m.Seed != 7 || m.Clients != 2 || m.DiskBlocks != 1<<10 ||
		m.Core.Tau != 5*time.Second || m.Tracer != tr {
		t.Fatalf("shard knobs lost: %+v", m)
	}
}

func TestNewClusterWithRuns(t *testing.T) {
	cl := NewClusterWith(WithSeed(11), WithClients(2), WithDisks(1))
	cl.Start()
	sc := cl.SyncClient(0)
	h, _, err := sc.Open("/via-options", true, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, BlockSize)
	copy(payload, "unified vocabulary")
	if err := sc.WriteAt(h, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := sc.SyncAll(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.SyncClient(1).ReadAt(mustOpenRO(t, cl.SyncClient(1), "/via-options"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read through the facade returned wrong bytes")
	}
	cl.Checker.FinalCheck()
	if n := len(cl.Checker.Violations()); n != 0 {
		t.Fatalf("%d violations", n)
	}
}

func mustOpenRO(t *testing.T, sc *SyncClient, path string) (h Handle) {
	t.Helper()
	h, _, err := sc.Open(path, false, false)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewShardClusterWithRuns(t *testing.T) {
	inst := NewShardClusterWith(WithShards(3), WithClients(1))
	inst.Start()
	h := inst.MustOpen(0, "/s1/x", true, true)
	inst.Write(0, h, 0, make([]byte, BlockSize))
	inst.Sync(0)
	if v := inst.FinalCheck(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestUnifiedOptionsLiveNodes drives one option list through the live
// TCP constructors: durable media, a shared registry, a shared tracer —
// the wiring cmd/tankd does by hand — then a write/read round trip over
// real sockets through the blocking client surface.
func TestUnifiedOptionsLiveNodes(t *testing.T) {
	reg := NewStatsRegistry()
	tr := NewTracer(NewTraceRing(256))
	media, err := OpenFileMedia(t.TempDir(), MediaOptions{Blocks: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithDiskBlocks(1 << 10),
		WithTracer(tr),
		WithRegistry(reg),
		// Dial with the fallback codec: the facade option must reach the
		// live transport, and a gob installation must still work end-to-end.
		WithWireCodec(WireGob),
	}

	topo := Topology{Server: 1, ServerAddr: Loopback(), Disks: map[NodeID]string{1000: Loopback()}}
	dn, err := StartDisk(NodeSpec{ID: 1000, Topo: topo}, append(opts, WithMedia(media))...)
	if err != nil {
		t.Fatal(err)
	}
	defer dn.Close()
	topo.Disks[1000] = dn.Addr.String()

	srv, err := StartServer(NodeSpec{ID: 1, Topo: topo}, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	topo.ServerAddr = srv.Addr.String()

	cn, err := StartClient(NodeSpec{ID: 10, Topo: topo}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()

	sc := cn.Sync(10 * time.Second)
	h, _, err := sc.Open("/live", true, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, BlockSize)
	copy(payload, "same options, real sockets")
	if err := sc.WriteAt(h, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := sc.SyncAll(); err != nil {
		t.Fatal(err)
	}
	got, err := sc.ReadAt(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("live round trip returned wrong bytes")
	}
}
