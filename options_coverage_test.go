package storagetank

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"time"
)

// The unified vocabulary's completeness contract: every exported With*
// option in options.go must demonstrably reach the Build the
// constructors read — NewClusterWith and NewShardClusterWith consume
// b.Cluster and b.Shard verbatim, the live Start* constructors consume
// b.Cluster, b.Shard.ReplicaLeaseTerm, and b.Node. The option list
// below is checked against the source file itself (go/parser), so
// adding an option without wiring it into this table fails the test
// rather than silently shipping an inert knob.

// optionProbe exercises one option with sample arguments and verifies
// the resolved Build reflects it on every surface the option documents.
type optionProbe struct {
	opt   Option
	check func(b Build) bool
}

func optionProbes() map[string]optionProbe {
	cfg := DefaultConfig()
	cfg.Tau = 9 * time.Second
	tr := NewTracer(NewTraceRing(8))
	place := SubtreePlacement{Prefixes: map[string]int{"/a": 0}}
	return map[string]optionProbe{
		"WithSeed": {WithSeed(42), func(b Build) bool {
			return b.Cluster.Seed == 42 && b.Shard.Seed == 42
		}},
		"WithClients": {WithClients(5), func(b Build) bool {
			return b.Cluster.Clients == 5 && b.Shard.Clients == 5
		}},
		"WithDisks": {WithDisks(4), func(b Build) bool {
			return b.Cluster.Disks == 4
		}},
		"WithShards": {WithShards(3), func(b Build) bool {
			return b.Shard.Shards == 3
		}},
		"WithReplicas": {WithReplicas(3), func(b Build) bool {
			return b.Shard.Replicas == 3
		}},
		"WithReplicaLeaseTerm": {WithReplicaLeaseTerm(800 * time.Millisecond), func(b Build) bool {
			return b.Shard.ReplicaLeaseTerm == 800*time.Millisecond
		}},
		"WithPlacement": {WithPlacement(place), func(b Build) bool {
			p, ok := b.Shard.Placement.(SubtreePlacement)
			return ok && p.Prefixes["/a"] == 0
		}},
		"WithServerService": {WithServerService(2 * time.Millisecond), func(b Build) bool {
			return b.Shard.ServerService == 2*time.Millisecond
		}},
		"WithDisksPerServer": {WithDisksPerServer(2), func(b Build) bool {
			return b.Shard.DisksPerServer == 2
		}},
		"WithDiskBlocks": {WithDiskBlocks(777), func(b Build) bool {
			return b.Cluster.DiskBlocks == 777 && b.Shard.DiskBlocks == 777
		}},
		"WithProtocol": {WithProtocol(cfg), func(b Build) bool {
			return b.Cluster.Core.Tau == 9*time.Second && b.Shard.Core.Tau == 9*time.Second
		}},
		"WithPolicy": {WithPolicy(Frangipani()), func(b Build) bool {
			return b.Cluster.Policy.Name == Frangipani().Name
		}},
		"WithFlushInterval": {WithFlushInterval(123 * time.Millisecond), func(b Build) bool {
			return b.Cluster.FlushInterval == 123*time.Millisecond
		}},
		"WithFlushBatch": {WithFlushBatch(6), func(b Build) bool {
			return b.Cluster.FlushBatch == 6
		}},
		"WithCacheMaxPages": {WithCacheMaxPages(32), func(b Build) bool {
			return b.Cluster.CacheMaxPages == 32
		}},
		"WithCacheQuota": {WithCacheQuota(1 << 20), func(b Build) bool {
			return b.Cluster.CacheQuota == 1<<20
		}},
		"WithPrefetch": {WithPrefetch(5), func(b Build) bool {
			return b.Cluster.Prefetch == 5
		}},
		"WithClockSkew": {WithClockSkew(false), func(b Build) bool {
			return !b.Cluster.ClockSkew
		}},
		"WithDiskService": {WithDiskService(3 * time.Millisecond), func(b Build) bool {
			return b.Cluster.DiskService == 3*time.Millisecond &&
				b.Shard.DiskService == 3*time.Millisecond &&
				b.liveDiskService == 3*time.Millisecond
		}},
		"WithoutChecker": {WithoutChecker(), func(b Build) bool {
			return b.Cluster.NoChecker && b.Shard.NoChecker
		}},
		"WithGracePeriod": {WithGracePeriod(7 * time.Second), func(b Build) bool {
			return b.Cluster.GracePeriod == 7*time.Second
		}},
		"WithTracer": {WithTracer(tr), func(b Build) bool {
			return b.Cluster.Tracer == tr && b.Shard.Tracer == tr && len(b.Node) == 1
		}},
		"WithMedia": {WithMedia(NewMemMedia()), func(b Build) bool {
			return len(b.Node) == 1
		}},
		"WithFaults": {WithFaults(NewFaults(1), nil), func(b Build) bool {
			return len(b.Node) == 1
		}},
		"WithRegistry": {WithRegistry(NewStatsRegistry()), func(b Build) bool {
			return len(b.Node) == 1
		}},
		"WithLogf": {WithLogf(func(string, ...any) {}), func(b Build) bool {
			return len(b.Node) == 1
		}},
		"WithWireCodec": {WithWireCodec(WireGob), func(b Build) bool {
			return len(b.Node) == 1
		}},
	}
}

// exportedOptions lists every exported With* func in options.go that
// returns Option, straight from the source.
func exportedOptions(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "options.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "With") {
			continue
		}
		rs := fd.Type.Results
		if rs == nil || len(rs.List) != 1 {
			continue
		}
		if id, ok := rs.List[0].Type.(*ast.Ident); !ok || id.Name != "Option" {
			continue
		}
		names = append(names, fd.Name.Name)
	}
	return names
}

func TestEveryExportedOptionRoundTrips(t *testing.T) {
	probes := optionProbes()
	names := exportedOptions(t)
	if len(names) == 0 {
		t.Fatal("no With* options found in options.go")
	}
	seen := map[string]bool{}
	for _, name := range names {
		seen[name] = true
		p, ok := probes[name]
		if !ok {
			t.Errorf("option %s has no probe: add it to optionProbes", name)
			continue
		}
		if !p.check(Resolve(p.opt)) {
			t.Errorf("option %s did not reach the resolved Build", name)
		}
	}
	for name := range probes {
		if !seen[name] {
			t.Errorf("probe %s matches no exported option in options.go", name)
		}
	}
	// And the defaults stay default when no option is applied: a probe
	// passing against the zero Resolve() would be vacuous.
	base := Resolve()
	for name, p := range probes {
		if name == "WithClockSkew" || name == "WithPrefetch" {
			// Sample values that coincide with (or normalize into) the
			// defaults are exempt from the vacuity check.
			continue
		}
		if p.check(base) {
			t.Errorf("probe %s passes against the default Build: it asserts nothing", name)
		}
	}
}
